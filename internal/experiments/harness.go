// Package experiments implements the reproduction harness for every table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index).
// Each experiment returns structured rows; cmd/experiments prints them and
// the root-level benchmarks wrap them as testing.B benchmarks.
package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cosoft/internal/client"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// fieldSpec is the minimal one-textfield UI used by several experiments.
const fieldSpec = `textfield field value=""`

// Cluster is one coupling server plus N in-process clients, each with its
// own widget registry built from the same spec, connected over instrumented
// links.
type Cluster struct {
	Srv     *server.Server
	Clients []*client.Client
	Links   []*netsim.Link
	wg      sync.WaitGroup
}

// NewCluster starts a server (with opts) and connects n clients whose
// registries are built from spec. The links carry the given one-way latency.
func NewCluster(n int, spec string, latency time.Duration, opts server.Options, copts client.Options) (*Cluster, error) {
	c := &Cluster{Srv: server.New(opts)}
	for i := 0; i < n; i++ {
		link := netsim.NewLink(latency)
		c.Links = append(c.Links, link)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.Srv.HandleConn(wire.NewConn(link.B))
		}()
		reg := widget.NewRegistry()
		if spec != "" {
			if _, err := widget.Build(reg, "/", spec); err != nil {
				c.Close()
				return nil, err
			}
		}
		o := copts
		o.AppType = orDefault(o.AppType, "bench")
		o.User = fmt.Sprintf("user%d", i)
		o.Host = "local"
		o.Registry = reg
		if o.RPCTimeout == 0 {
			o.RPCTimeout = 30 * time.Second
		}
		cli, err := client.New(link.A, o)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Clients = append(c.Clients, cli)
	}
	return c, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// DeclareAll declares the subtree at path on every client.
func (c *Cluster) DeclareAll(path string) error {
	for _, cli := range c.Clients {
		if err := cli.DeclareTree(path); err != nil {
			return err
		}
	}
	return nil
}

// CoupleStar couples client 0's object at path with every other client's
// object at the same path.
func (c *Cluster) CoupleStar(path string) error {
	for _, cli := range c.Clients[1:] {
		if err := c.Clients[0].Couple(path, cli.Ref(path)); err != nil {
			return err
		}
	}
	return c.WaitCoupled(path, len(c.Clients)-1)
}

// WaitCoupled blocks until every client's mirror shows the expected group
// size for the object at path.
func (c *Cluster) WaitCoupled(path string, others int) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := true
		for _, cli := range c.Clients {
			if len(cli.CO(path)) != others {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
	return fmt.Errorf("experiments: coupling of %s did not converge", path)
}

// WaitValue blocks until the widget at path on every client reports the
// wanted attribute value.
func (c *Cluster) WaitValue(path, attrName, want string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := true
		for _, cli := range c.Clients {
			w, err := cli.Registry().Lookup(path)
			if err != nil || w.Attr(attrName).AsString() != want {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
	return fmt.Errorf("experiments: value %q on %s did not converge", want, path)
}

// DispatchRetry dispatches an event, retrying while the group lock is held
// by an in-flight event — the programmatic equivalent of a user whose action
// is disabled until the floor is free ("Actions on locked objects are
// disabled", §3.2). It returns the number of rejected attempts.
func DispatchRetry(cli *client.Client, ev *widget.Event) (int, error) {
	rejections := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := cli.DispatchChecked(ev)
		if err == nil {
			return rejections, nil
		}
		if !errorsIsRejected(err) || time.Now().After(deadline) {
			return rejections, err
		}
		rejections++
		time.Sleep(50 * time.Microsecond)
	}
}

func errorsIsRejected(err error) bool {
	// Both outcomes mean "the floor is taken, try again": the server denied
	// the group lock, or the local widget is currently disabled by a
	// SetLocks from an in-flight event.
	return errors.Is(err, client.ErrRejected) || errors.Is(err, widget.ErrDisabled)
}

// TotalMessages sums frames over all links, both directions.
func (c *Cluster) TotalMessages() int64 {
	var total int64
	for _, l := range c.Links {
		total += l.TotalMessages()
	}
	return total
}

// TotalBytes sums bytes over all links, both directions.
func (c *Cluster) TotalBytes() int64 {
	var total int64
	for _, l := range c.Links {
		total += l.TotalBytes()
	}
	return total
}

// Close tears everything down.
func (c *Cluster) Close() {
	for _, cli := range c.Clients {
		cli.Close()
	}
	c.Srv.Close()
	c.wg.Wait()
}
