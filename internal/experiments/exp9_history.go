package experiments

import (
	"fmt"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// HistoryRow measures the historical-UI-states facility (§2.1): cost of
// recording overwritten states via copies, then walking the undo stack back
// and forward.
type HistoryRow struct {
	Depth       int
	RecordTime  time.Duration // N copies, each recording one backup
	UndoAllTime time.Duration // N undos back to the original state
	RedoAllTime time.Duration // N redos forward again
	UndoCorrect bool          // state after undo-all equals the original
	RedoCorrect bool          // state after redo-all equals the final copy
}

// HistoryWalk sweeps history depths.
func HistoryWalk(depths []int) ([]HistoryRow, error) {
	var rows []HistoryRow
	for _, depth := range depths {
		row, err := runHistoryWalk(depth)
		if err != nil {
			return nil, fmt.Errorf("history(%d): %w", depth, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runHistoryWalk(depth int) (HistoryRow, error) {
	cl, err := NewCluster(2, fieldSpec, 0,
		server.Options{HistoryDepth: depth + 1}, client.Options{})
	if err != nil {
		return HistoryRow{}, err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/field"); err != nil {
		return HistoryRow{}, err
	}
	a, b := cl.Clients[0], cl.Clients[1]

	// b starts at "original"; a overwrites it depth times by state copies —
	// each overwrite lands in the historical database.
	if err := b.DispatchChecked(&widget.Event{Path: "/field", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("original")}}); err != nil {
		return HistoryRow{}, err
	}
	row := HistoryRow{Depth: depth}
	start := time.Now()
	for i := 0; i < depth; i++ {
		if err := a.DispatchChecked(&widget.Event{Path: "/field", Name: widget.EventChanged,
			Args: []attr.Value{attr.String(fmt.Sprintf("v%d", i))}}); err != nil {
			return HistoryRow{}, err
		}
		if err := a.CopyTo("/field", b.Ref("/field"), false); err != nil {
			return HistoryRow{}, err
		}
	}
	final := fmt.Sprintf("v%d", depth-1)
	if err := waitValue(b, "/field", widget.AttrValue, final); err != nil {
		return HistoryRow{}, err
	}
	row.RecordTime = time.Since(start)

	// Undo all the way back.
	start = time.Now()
	for i := 0; i < depth; i++ {
		if err := b.Undo("/field"); err != nil {
			return HistoryRow{}, err
		}
	}
	if err := waitValue(b, "/field", widget.AttrValue, "original"); err != nil {
		return HistoryRow{}, err
	}
	row.UndoAllTime = time.Since(start)
	row.UndoCorrect = true

	// Redo all the way forward.
	start = time.Now()
	for i := 0; i < depth; i++ {
		if err := b.Redo("/field"); err != nil {
			return HistoryRow{}, err
		}
	}
	if err := waitValue(b, "/field", widget.AttrValue, final); err != nil {
		return HistoryRow{}, err
	}
	row.RedoAllTime = time.Since(start)
	row.RedoCorrect = true
	return row, nil
}
