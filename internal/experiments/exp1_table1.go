package experiments

import (
	"fmt"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/baseline/multiplex"
	"cosoft/internal/baseline/uirepl"
	"cosoft/internal/client"
	"cosoft/internal/compat"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// Capability is one probed yes/no property of an architecture.
type Capability struct {
	Name string
	Held bool
	Note string
}

// ArchRow is one row of the reproduced comparison table (§2.2): an
// application-independent synchronization approach and its probed
// flexibility properties.
type ArchRow struct {
	Architecture string
	Reference    string
	Capabilities []Capability
}

// CapabilityNames lists the probed dimensions in column order.
func CapabilityNames() []string {
	return []string{
		"partial coupling",
		"heterogeneous apps",
		"dynamic population",
		"periodic (state) sync",
		"persists after decouple",
		"local response",
	}
}

// Table1 reproduces the paper's comparison of application-independent
// synchronization approaches by probing live implementations of the three
// architectures. Every capability entry is the outcome of running the
// corresponding scenario, not a hard-coded verdict.
func Table1() ([]ArchRow, error) {
	mux, err := probeMultiplex()
	if err != nil {
		return nil, fmt.Errorf("multiplex probes: %w", err)
	}
	ui, err := probeUIRepl()
	if err != nil {
		return nil, fmt.Errorf("uirepl probes: %w", err)
	}
	cos, err := probeCosoft()
	if err != nil {
		return nil, fmt.Errorf("cosoft probes: %w", err)
	}
	return []ArchRow{
		{Architecture: "multiplex (shared window)", Reference: "SharedX / XTV", Capabilities: mux},
		{Architecture: "UI-replicated", Reference: "Suite / Rendezvous", Capabilities: ui},
		{Architecture: "fully replicated + coupling", Reference: "COSOFT (this paper)", Capabilities: cos},
	}, nil
}

// probeMultiplex runs the shared-window scenarios against the Figure 1
// implementation.
func probeMultiplex() ([]Capability, error) {
	s, err := multiplex.New(multiplex.Options{Users: 2, Spec: `form f title="T"
  textfield a value="va"
  textfield b value="vb"`})
	if err != nil {
		return nil, err
	}
	defer s.Stop()

	// Partial coupling: can user 1 share only /f/a but keep /f/b private?
	// The multiplexor mirrors every display update to every user — changing
	// the "private" object is still visible at user 0.
	if err := s.Do(1, &widget.Event{Path: "/f/b", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("private edit")}}); err != nil {
		return nil, err
	}
	leaked := s.Display(0).Attr("/f/b", widget.AttrValue).AsString() == "private edit"
	partial := !leaked

	// Heterogeneous applications: there is exactly one application
	// instance; a second, different application cannot participate at all.
	heterogeneous := false

	// Dynamic population: late joining is possible (a display can attach),
	// but selective sub-grouping is not — the probe above showed every
	// participant sees everything.
	dynamic := false

	// Periodic sync: no decoupled working phase exists to re-synchronize.
	periodic := false

	// Persistence after leaving: the shared window disappears.
	s.Leave(1)
	persists := s.Display(1).Attr("/f/a", widget.AttrValue).IsValid()

	// Local response: every interaction crosses the network (checked by the
	// latency test in E2); structurally there is no local execution path.
	local := false

	return []Capability{
		{Name: "partial coupling", Held: partial, Note: "display mirrored wholesale"},
		{Name: "heterogeneous apps", Held: heterogeneous, Note: "single application instance"},
		{Name: "dynamic population", Held: dynamic, Note: "join/leave only, no sub-groups"},
		{Name: "periodic (state) sync", Held: periodic, Note: "continuous only"},
		{Name: "persists after decouple", Held: persists, Note: "window disappears on leave"},
		{Name: "local response", Held: local, Note: "I/O round trip per interaction"},
	}, nil
}

// probeUIRepl runs the scenarios against the Figure 2 implementation.
func probeUIRepl() ([]Capability, error) {
	s, err := uirepl.New(uirepl.Options{Users: 2, Spec: `form f title="T"
  textfield draft value=""
  label total label=""`})
	if err != nil {
		return nil, err
	}
	defer s.Stop()

	// Local response: syntactic actions execute on the local replica only.
	if err := s.DoLocal(0, &widget.Event{Path: "/f/draft", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("typed")}}); err != nil {
		return nil, err
	}
	w0, err := s.Replica(0).Lookup("/f/draft")
	if err != nil {
		return nil, err
	}
	w1, err := s.Replica(1).Lookup("/f/draft")
	if err != nil {
		return nil, err
	}
	local := w0.Attr(widget.AttrValue).AsString() == "typed"
	// Partial coupling in the COSOFT sense would let the two users couple
	// *selected* objects with each other; in the UI-replicated architecture
	// the single semantic component forces one shared application state —
	// UI-private state exists, but cross-user coupling is all-or-nothing
	// per semantic action.
	partial := false
	_ = w1

	// Heterogeneous applications: both replicas are interfaces of the SAME
	// semantic component; different applications cannot join.
	heterogeneous := false

	// Dynamic population: replicas may attach/detach; selective coupling of
	// sub-groups is impossible for the same reason as partial coupling.
	dynamic := false

	// Periodic sync: replicas cannot diverge semantically, so there is no
	// decoupled phase either.
	periodic := false

	// Persistence: the UI replica persists locally when leaving (it is a
	// full process), though the semantic link is gone.
	persists := true

	return []Capability{
		{Name: "partial coupling", Held: partial, Note: "single semantic state"},
		{Name: "heterogeneous apps", Held: heterogeneous, Note: "one semantic component"},
		{Name: "dynamic population", Held: dynamic, Note: "attach/detach only"},
		{Name: "periodic (state) sync", Held: periodic, Note: "no divergent phases"},
		{Name: "persists after decouple", Held: persists, Note: "UI replica is local"},
		{Name: "local response", Held: local, Note: "syntactic actions local"},
	}, nil
}

// probeCosoft runs the scenarios against the full coupling implementation.
func probeCosoft() ([]Capability, error) {
	corr := compat.NewCorrespondences()
	corr.Declare("textfield", "label", map[string]string{widget.AttrValue: widget.AttrLabel})
	cl, err := NewCluster(3, `form f title="T"
  textfield shared value=""
  textfield private value=""
  label tag label=""`, 0,
		server.Options{Correspondences: corr},
		client.Options{Correspondences: corr})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/f"); err != nil {
		return nil, err
	}
	a, b, c := cl.Clients[0], cl.Clients[1], cl.Clients[2]

	// Partial coupling: couple only /f/shared between a and b; /f/private
	// stays private.
	if err := a.Couple("/f/shared", b.Ref("/f/shared")); err != nil {
		return nil, err
	}
	if err := a.DispatchChecked(&widget.Event{Path: "/f/shared", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("both")}}); err != nil {
		return nil, err
	}
	if err := a.DispatchChecked(&widget.Event{Path: "/f/private", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("mine")}}); err != nil {
		return nil, err
	}
	if err := waitValue(b, "/f/shared", widget.AttrValue, "both"); err != nil {
		return nil, err
	}
	wPriv, err := b.Registry().Lookup("/f/private")
	if err != nil {
		return nil, err
	}
	partial := wPriv.Attr(widget.AttrValue).AsString() == ""

	// Heterogeneous: copy a textfield's state onto a label through the
	// declared correspondence (different classes, different relevant
	// attributes).
	if err := a.CopyTo("/f/shared", c.Ref("/f/tag"), false); err != nil {
		return nil, err
	}
	if err := waitValue(c, "/f/tag", widget.AttrLabel, "both"); err != nil {
		return nil, err
	}
	heterogeneous := true

	// Dynamic population: c joins the group at runtime, then leaves again.
	if err := c.Couple("/f/shared", a.Ref("/f/shared")); err != nil {
		return nil, err
	}
	if err := cl.WaitCoupled("/f/shared", 2); err != nil {
		return nil, err
	}
	if err := c.Decouple("/f/shared", a.Ref("/f/shared")); err != nil {
		return nil, err
	}
	dynamic := true

	// Periodic sync: b works decoupled, then re-synchronizes by state.
	if err := a.Decouple("/f/shared", b.Ref("/f/shared")); err != nil {
		return nil, err
	}
	if err := a.DispatchChecked(&widget.Event{Path: "/f/shared", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("diverged")}}); err != nil {
		return nil, err
	}
	if err := b.CopyFrom(a.Ref("/f/shared"), "/f/shared", false); err != nil {
		return nil, err
	}
	if err := waitValue(b, "/f/shared", widget.AttrValue, "diverged"); err != nil {
		return nil, err
	}
	periodic := true

	// Persistence after decoupling: b's object still exists with its state.
	wShared, err := b.Registry().Lookup("/f/shared")
	if err != nil {
		return nil, err
	}
	persists := wShared.Attr(widget.AttrValue).AsString() == "diverged"

	// Local response: an event on an uncoupled object never touches the
	// server.
	before := cl.Srv.Stats().Events
	if err := a.DispatchChecked(&widget.Event{Path: "/f/private", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("local only")}}); err != nil {
		return nil, err
	}
	local := cl.Srv.Stats().Events == before

	return []Capability{
		{Name: "partial coupling", Held: partial, Note: "per-object couple links"},
		{Name: "heterogeneous apps", Held: heterogeneous, Note: "correspondence relations"},
		{Name: "dynamic population", Held: dynamic, Note: "runtime couple/decouple"},
		{Name: "periodic (state) sync", Held: periodic, Note: "CopyTo/CopyFrom"},
		{Name: "persists after decouple", Held: persists, Note: "objects keep last state"},
		{Name: "local response", Held: local, Note: "uncoupled events local"},
	}, nil
}

func waitValue(c *client.Client, path, attrName, want string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		w, err := c.Registry().Lookup(path)
		if err == nil && w.Attr(attrName).AsString() == want {
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
	return fmt.Errorf("experiments: %s did not reach %q", path, want)
}
