package experiments

import (
	"fmt"
	"sync"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// LockingRow compares the paper's published group-locking algorithm
// (sequential lock-all-or-undo, §3.2) against the deterministic-order
// ablation, under contention (DESIGN.md decision 2).
type LockingRow struct {
	Variant    string
	Users      int
	OpsPerUser int
	Total      time.Duration
	Denials    uint64
}

// LockingComparison runs the same contended workload under both variants.
func LockingComparison(users, opsPerUser int) ([]LockingRow, error) {
	var rows []LockingRow
	for _, ordered := range []bool{false, true} {
		variant := "paper-sequential"
		if ordered {
			variant = "ordered"
		}
		row, err := runLockingVariant(variant, users, opsPerUser, ordered)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", variant, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runLockingVariant(variant string, users, opsPerUser int, ordered bool) (LockingRow, error) {
	cl, err := NewCluster(users, fieldSpec, 0,
		server.Options{OrderedLocking: ordered}, client.Options{})
	if err != nil {
		return LockingRow{}, err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/field"); err != nil {
		return LockingRow{}, err
	}
	if err := cl.CoupleStar("/field"); err != nil {
		return LockingRow{}, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, users)
	start := time.Now()
	for u := range cl.Clients {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < opsPerUser; i++ {
				ev := &widget.Event{Path: "/field", Name: widget.EventChanged,
					Args: []attr.Value{attr.String(fmt.Sprintf("u%d-%d", u, i))}}
				if _, err := DispatchRetry(cl.Clients[u], ev); err != nil {
					errs <- err
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return LockingRow{}, err
	}
	return LockingRow{
		Variant:    variant,
		Users:      users,
		OpsPerUser: opsPerUser,
		Total:      time.Since(start),
		Denials:    cl.Srv.Stats().LockFailures,
	}, nil
}
