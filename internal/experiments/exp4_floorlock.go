package experiments

import (
	"fmt"
	"strings"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// FloorLockRow measures the floor-control cost at one event granularity
// (§3.2: "Such a locking mechanism might become costly if the events were
// fine-grained, such as ... the typing of single characters. However, in our
// model, most events are high-level callback events").
type FloorLockRow struct {
	CharsPerEvent int
	Events        int
	TotalTime     time.Duration
	PerChar       time.Duration
	Messages      int64
	// Rejections counts floor-control denials that forced retries.
	Rejections int
	// UncoupledTime is the same editing performed on an uncoupled object
	// (pure local cost); the difference is the synchronization overhead.
	UncoupledTime time.Duration
	// OverheadShare = (TotalTime - UncoupledTime) / TotalTime.
	OverheadShare float64
}

// FloorControl transfers a fixed text volume between two coupled textareas
// using 'edit' events of varying granularity.
func FloorControl(textLen int, granularities []int) ([]FloorLockRow, error) {
	payload := strings.Repeat("a", textLen)
	var rows []FloorLockRow
	for _, chars := range granularities {
		if chars <= 0 || chars > textLen {
			return nil, fmt.Errorf("experiments: bad granularity %d", chars)
		}
		coupledTime, msgs, events, rejections, err := runEditing(payload, chars, true)
		if err != nil {
			return nil, err
		}
		localTime, _, _, _, err := runEditing(payload, chars, false)
		if err != nil {
			return nil, err
		}
		share := 0.0
		if coupledTime > 0 {
			share = float64(coupledTime-localTime) / float64(coupledTime)
		}
		rows = append(rows, FloorLockRow{
			CharsPerEvent: chars,
			Events:        events,
			TotalTime:     coupledTime,
			PerChar:       coupledTime / time.Duration(textLen),
			Messages:      msgs,
			Rejections:    rejections,
			UncoupledTime: localTime,
			OverheadShare: share,
		})
	}
	return rows, nil
}

func runEditing(payload string, chars int, coupled bool) (time.Duration, int64, int, int, error) {
	cl, err := NewCluster(2, `textarea doc text=""`, 0, server.Options{}, client.Options{})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/doc"); err != nil {
		return 0, 0, 0, 0, err
	}
	if coupled {
		if err := cl.CoupleStar("/doc"); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	a := cl.Clients[0]
	before := cl.TotalMessages()
	events, rejections := 0, 0
	start := time.Now()
	for pos := 0; pos < len(payload); pos += chars {
		end := pos + chars
		if end > len(payload) {
			end = len(payload)
		}
		ev := &widget.Event{Path: "/doc", Name: widget.EventEdit, Args: []attr.Value{
			attr.Int(int64(pos)), attr.Int(0), attr.String(payload[pos:end]),
		}}
		rej, err := DispatchRetry(a, ev)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		rejections += rej
		events++
	}
	if coupled {
		if err := cl.WaitValue("/doc", widget.AttrText, payload); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	return time.Since(start), cl.TotalMessages() - before, events, rejections, nil
}
