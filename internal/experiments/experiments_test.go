package experiments

import (
	"testing"
	"time"
)

// The experiment harnesses run with miniature parameters here; the shapes
// they must exhibit are asserted where deterministic.

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byArch := map[string][]Capability{}
	for _, r := range rows {
		if len(r.Capabilities) != len(CapabilityNames()) {
			t.Fatalf("%s: %d capabilities", r.Architecture, len(r.Capabilities))
		}
		byArch[r.Architecture] = r.Capabilities
	}
	// The paper's central claim: only the coupling model holds all the
	// flexibility dimensions.
	for _, c := range byArch["fully replicated + coupling"] {
		if !c.Held {
			t.Errorf("cosoft lacks %q", c.Name)
		}
	}
	// The multiplex architecture fails partial coupling, heterogeneity,
	// persistence and local response.
	mux := map[string]bool{}
	for _, c := range byArch["multiplex (shared window)"] {
		mux[c.Name] = c.Held
	}
	for _, name := range []string{"partial coupling", "heterogeneous apps", "persists after decouple", "local response"} {
		if mux[name] {
			t.Errorf("multiplex unexpectedly holds %q", name)
		}
	}
	// The UI-replicated architecture gains local response but not
	// heterogeneity.
	ui := map[string]bool{}
	for _, c := range byArch["UI-replicated"] {
		ui[c.Name] = c.Held
	}
	if !ui["local response"] {
		t.Error("ui-replicated must hold local response")
	}
	if ui["heterogeneous apps"] {
		t.Error("ui-replicated must not hold heterogeneity")
	}
}

func TestArchComparisonShapes(t *testing.T) {
	rows, err := ArchComparison(ArchParams{
		Users:          []int{2, 4},
		Latencies:      []time.Duration{500 * time.Microsecond},
		EventsPerUser:  4,
		SharedFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Multiplex serializes: per-event latency grows with the population.
	perEvent := map[string]map[int]time.Duration{}
	for _, r := range rows {
		if perEvent[r.Architecture] == nil {
			perEvent[r.Architecture] = map[int]time.Duration{}
		}
		perEvent[r.Architecture][r.Users] = r.PerEvent
		if r.Events == 0 || r.Messages == 0 {
			t.Errorf("%s/%d: empty measurement %+v", r.Architecture, r.Users, r)
		}
	}
	if perEvent["multiplex"][4] <= perEvent["multiplex"][2] {
		t.Errorf("multiplex must degrade with population: %v vs %v",
			perEvent["multiplex"][4], perEvent["multiplex"][2])
	}
	// Under the mixed workload, coupling wins on response time: private
	// interactions are local, only shared ones pay the server round trip.
	for _, users := range []int{2, 4} {
		if perEvent["cosoft"][users] >= perEvent["multiplex"][users] {
			t.Errorf("cosoft (%v) must beat multiplex (%v) at %d users",
				perEvent["cosoft"][users], perEvent["multiplex"][users], users)
		}
	}
}

func TestStateVsActionShapes(t *testing.T) {
	rows, err := StateVsAction([]int{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	// Replay cost grows with the missed-action count; state copy is flat
	// (same single transfer regardless of history length).
	if large.ReplayMsgs <= small.ReplayMsgs {
		t.Errorf("replay messages must grow: %d vs %d", large.ReplayMsgs, small.ReplayMsgs)
	}
	if large.StateCopyMsgs != small.StateCopyMsgs {
		t.Errorf("state copy messages must be flat: %d vs %d",
			large.StateCopyMsgs, small.StateCopyMsgs)
	}
	// Compaction collapses the changed-value history to one event.
	if large.CompactEvents != 1 {
		t.Errorf("compacted events = %d, want 1", large.CompactEvents)
	}
	// At 32 missed actions the crossover has long happened.
	if large.StateCopyTime >= large.ReplayTime {
		t.Errorf("state copy (%v) must beat replay (%v) at 32 actions",
			large.StateCopyTime, large.ReplayTime)
	}
}

func TestFloorControlShapes(t *testing.T) {
	rows, err := FloorControl(256, []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	fine, coarse := rows[0], rows[1]
	if fine.Events != 256 || coarse.Events != 4 {
		t.Fatalf("event counts = %d, %d", fine.Events, coarse.Events)
	}
	// Fine-grained events pay far more messages and more total time for
	// the same text volume.
	if fine.Messages <= coarse.Messages*8 {
		t.Errorf("fine-grained must cost many more messages: %d vs %d",
			fine.Messages, coarse.Messages)
	}
	if fine.TotalTime <= coarse.TotalTime {
		t.Errorf("fine-grained must be slower: %v vs %v", fine.TotalTime, coarse.TotalTime)
	}
}

func TestCompatMatchingShapes(t *testing.T) {
	rows, err := CompatMatching([]int{2, 5}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.HeurOK {
			t.Errorf("heuristic failed at fanout %d", r.Fanout)
		}
	}
	// The naive matcher's visit count explodes with fanout; the heuristic
	// stays near-linear in node count.
	if rows[1].NaiveOK && rows[1].NaiveVisits <= rows[1].HeurVisits {
		t.Errorf("naive (%d visits) should exceed heuristic (%d visits) at fanout 5",
			rows[1].NaiveVisits, rows[1].HeurVisits)
	}
	if rows[1].HeurVisits > rows[1].Nodes*4 {
		t.Errorf("heuristic visits %d not near-linear in %d nodes",
			rows[1].HeurVisits, rows[1].Nodes)
	}
}

func TestTORIShapes(t *testing.T) {
	rows, err := TORIQueryCoupling([]int{100, 5000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.DivergentOK {
			t.Error("divergent query must work under re-execution")
		}
		if r.ResultBytes == 0 {
			t.Error("share-results must ship bytes")
		}
	}
	// Re-execution cost grows with the database size (the paper concedes
	// share-results wins on pure evaluation cost for expensive queries).
	if rows[1].ReexecTime <= rows[0].ReexecTime {
		t.Errorf("re-execution must scale with db size: %v vs %v",
			rows[1].ReexecTime, rows[0].ReexecTime)
	}
}

func TestIndirectCouplingShapes(t *testing.T) {
	rows, err := IndirectCoupling([]int{64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	// Direct coupling ships the rendered points: bytes grow with M.
	if large.DirectBytes <= small.DirectBytes {
		t.Errorf("direct bytes must grow: %d vs %d", large.DirectBytes, small.DirectBytes)
	}
	// Indirect coupling ships only the term: bytes are flat in M.
	if large.IndirectBytes > small.IndirectBytes*2 {
		t.Errorf("indirect bytes must be ~flat: %d vs %d",
			large.IndirectBytes, small.IndirectBytes)
	}
	// And at 4096 points, indirect is the cheaper transfer.
	if large.IndirectBytes >= large.DirectBytes {
		t.Errorf("indirect (%d B) must beat direct (%d B) at 4096 points",
			large.IndirectBytes, large.DirectBytes)
	}
}

func TestOrderingShapes(t *testing.T) {
	rows, err := OrderingComparison(3, 20, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	calm, hot := rows[0], rows[1]
	// With no contention, neither scheme pays conflict costs.
	if calm.CentralRejected != 0 {
		t.Errorf("no-contention centralized rejections = %d", calm.CentralRejected)
	}
	if calm.Conflicts != 0 {
		t.Errorf("no-contention optimistic conflicts = %d", calm.Conflicts)
	}
	// Full contention must surface in at least one scheme's repair
	// mechanism (lock rejections or optimistic undos).
	if hot.CentralRejected == 0 && hot.Undos == 0 {
		t.Error("full contention produced no rejections and no undos")
	}
	if hot.CentralCompleted == 0 {
		t.Error("centralized made no progress under contention")
	}
}

func TestHistoryWalkShapes(t *testing.T) {
	rows, err := HistoryWalk([]int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.UndoCorrect || !r.RedoCorrect {
			t.Errorf("depth %d: undo/redo incorrect", r.Depth)
		}
		if r.RecordTime <= 0 || r.UndoAllTime <= 0 || r.RedoAllTime <= 0 {
			t.Errorf("depth %d: non-positive timings %+v", r.Depth, r)
		}
	}
}

func TestLockingComparisonShapes(t *testing.T) {
	rows, err := LockingComparison(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("%s: total = %v", r.Variant, r.Total)
		}
	}
}
