package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/baseline/timestamp"
	"cosoft/internal/client"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// OrderingRow compares centralized-control locking against optimistic
// timestamp ordering at one conflict rate (§2.1's two ordering approaches
// for replicated architectures).
type OrderingRow struct {
	Users      int
	OpsPerUser int
	HotShare   float64 // fraction of operations targeting the shared object
	// Centralized (COSOFT floor control).
	CentralTime      time.Duration
	CentralRejected  int64 // floor denials (each forced a user retry)
	CentralCompleted int
	// Optimistic (timestamped, GROVE style).
	OptimisticTime time.Duration
	Conflicts      int64
	Undos          int64
}

// OrderingComparison sweeps the share of operations that touch the
// contended, group-coupled object; the remainder touch private objects.
func OrderingComparison(users, opsPerUser int, hotShares []float64) ([]OrderingRow, error) {
	var rows []OrderingRow
	for _, share := range hotShares {
		row := OrderingRow{Users: users, OpsPerUser: opsPerUser, HotShare: share}
		if err := runCentralized(&row); err != nil {
			return nil, fmt.Errorf("centralized(%.2f): %w", share, err)
		}
		if err := runOptimistic(&row); err != nil {
			return nil, fmt.Errorf("optimistic(%.2f): %w", share, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

const orderingSpec = `form f
  textfield hot value=""
  textfield private value=""`

func runCentralized(row *OrderingRow) error {
	cl, err := NewCluster(row.Users, orderingSpec, 0, server.Options{}, client.Options{})
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/f"); err != nil {
		return err
	}
	if err := cl.CoupleStar("/f/hot"); err != nil {
		return err
	}
	var wg sync.WaitGroup
	completed := make([]int, row.Users)
	start := time.Now()
	for u := range cl.Clients {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(u)))
			for i := 0; i < row.OpsPerUser; i++ {
				path := "/f/private"
				if r.Float64() < row.HotShare {
					path = "/f/hot"
				}
				ev := &widget.Event{Path: path, Name: widget.EventChanged,
					Args: []attr.Value{attr.String(fmt.Sprintf("u%d-%d", u, i))}}
				if _, err := DispatchRetry(cl.Clients[u], ev); err == nil {
					completed[u]++
				}
			}
		}(u)
	}
	wg.Wait()
	row.CentralTime = time.Since(start)
	for _, n := range completed {
		row.CentralCompleted += n
	}
	row.CentralRejected = int64(cl.Srv.Stats().LockFailures)
	return nil
}

func runOptimistic(row *OrderingRow) error {
	// 500µs propagation delay opens the concurrency windows a LAN would.
	s, err := timestamp.NewWithDelay(row.Users, 500*time.Microsecond)
	if err != nil {
		return err
	}
	defer s.Stop()
	var wg sync.WaitGroup
	start := time.Now()
	for u := 0; u < row.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(u)))
			for i := 0; i < row.OpsPerUser; i++ {
				key := fmt.Sprintf("private-%d", u)
				if r.Float64() < row.HotShare {
					key = "hot"
				}
				s.Node(u).Apply(key, fmt.Sprintf("u%d-%d", u, i))
			}
		}(u)
	}
	wg.Wait()
	s.Quiesce()
	row.OptimisticTime = time.Since(start)
	_, row.Conflicts, row.Undos = s.Stats()
	if !s.Converged("hot") {
		return fmt.Errorf("optimistic replicas diverged")
	}
	return nil
}
