package experiments

import (
	"fmt"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/compat"
	"cosoft/internal/widget"
)

// CompatRow measures the s-compatibility mapping search at one tree shape
// (§3.3: "calculating α over several levels of nesting may be costly in
// practice ... certain heuristics have to be used to avoid combinatorial
// explosion").
type CompatRow struct {
	Fanout int
	Depth  int
	Nodes  int
	// Naive backtracking search.
	NaiveVisits int
	NaiveTime   time.Duration
	NaiveOK     bool
	// Heuristic (signature/name) search.
	HeurVisits int
	HeurTime   time.Duration
	HeurOK     bool
}

// CompatMatching sweeps tree shapes and measures both matchers. Trees are
// built with structurally identical, anonymously named children so the
// matcher cannot shortcut by name.
func CompatMatching(fanouts, depths []int) ([]CompatRow, error) {
	checker := compat.NewChecker(widget.NewClassRegistry(), compat.NewCorrespondences())
	var rows []CompatRow
	for _, fanout := range fanouts {
		for _, depth := range depths {
			a := buildMatchTree(fanout, depth, "a")
			b := buildMatchTree(fanout, depth, "b")
			row := CompatRow{Fanout: fanout, Depth: depth, Nodes: a.CountNodes()}

			start := time.Now()
			_, ok, stats := checker.SCompatible(a, b, compat.MatchOptions{
				Heuristic: false,
				// A budget keeps the worst cases bounded; hitting it is
				// itself the experiment's finding.
				MaxVisits: 2_000_000,
			})
			row.NaiveTime = time.Since(start)
			row.NaiveVisits = stats.NodesVisited
			row.NaiveOK = ok

			start = time.Now()
			_, ok, stats = checker.SCompatible(b, a, compat.MatchOptions{Heuristic: true})
			row.HeurTime = time.Since(start)
			row.HeurVisits = stats.NodesVisited
			row.HeurOK = ok
			if !row.HeurOK {
				return nil, fmt.Errorf("experiments: heuristic failed on fanout=%d depth=%d", fanout, depth)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// buildMatchTree makes a container of `fanout` subtrees where child i is a
// chain of depth depth+i: exactly one bijection exists, names never help
// (they differ between the trees), and a wrong pairing is only discovered
// after descending min(i,j) levels. The "b" tree lists its children in
// reverse, so a first-fit matcher pairs the shortest against the longest
// first and repeatedly probes deep before failing — the paper's "costly in
// practice" case.
func buildMatchTree(fanout, depth int, prefix string) widget.TreeState {
	root := widget.TreeState{Class: "form", Name: prefix + "root", Attrs: attr.NewSet()}
	for i := 0; i < fanout; i++ {
		root.Children = append(root.Children, buildMatchChain(depth+i, fmt.Sprintf("%s%d", prefix, i)))
	}
	if prefix == "b" {
		for i, j := 0, len(root.Children)-1; i < j; i, j = i+1, j-1 {
			root.Children[i], root.Children[j] = root.Children[j], root.Children[i]
		}
	}
	return root
}

func buildMatchChain(depth int, name string) widget.TreeState {
	node := widget.TreeState{Class: "form", Name: name, Attrs: attr.NewSet()}
	if depth == 0 {
		node.Class = "button"
		return node
	}
	node.Children = []widget.TreeState{
		buildMatchChain(depth-1, name+"l"),
		{Class: "textfield", Name: name + "t", Attrs: attr.NewSet()},
	}
	return node
}
