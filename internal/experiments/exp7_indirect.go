package experiments

import (
	"fmt"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/classroom"
	"cosoft/internal/client"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// IndirectRow compares direct coupling of a dependent object (the rendered
// function display) against indirect coupling of its parameter field (§4:
// "partial coupling can be very efficient since it allows for indirect
// coupling ... For these dependent objects, direct coupling might be much
// more costly").
type IndirectRow struct {
	DisplayPoints int
	// Direct: the canvas itself is coupled; each update ships the points.
	DirectTime  time.Duration
	DirectBytes int64
	// Indirect: only the term field is coupled; each environment
	// regenerates the display locally.
	IndirectTime  time.Duration
	IndirectBytes int64
}

// IndirectCoupling sweeps the dependent display's size. Each trial performs
// one teacher update and waits until the student side holds the result.
func IndirectCoupling(points []int) ([]IndirectRow, error) {
	var rows []IndirectRow
	for _, m := range points {
		direct, dbytes, err := runDirectCoupling(m)
		if err != nil {
			return nil, fmt.Errorf("direct(%d): %w", m, err)
		}
		indirect, ibytes, err := runIndirectCoupling(m)
		if err != nil {
			return nil, fmt.Errorf("indirect(%d): %w", m, err)
		}
		rows = append(rows, IndirectRow{
			DisplayPoints: m,
			DirectTime:    direct, DirectBytes: dbytes,
			IndirectTime: indirect, IndirectBytes: ibytes,
		})
	}
	return rows, nil
}

// runDirectCoupling couples the canvases and ships one draw event carrying
// the full m-point rendering.
func runDirectCoupling(m int) (time.Duration, int64, error) {
	cl, err := NewCluster(2, `canvas display width=640 height=400`, 0,
		server.Options{}, client.Options{})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/display"); err != nil {
		return 0, 0, err
	}
	if err := cl.CoupleStar("/display"); err != nil {
		return 0, 0, err
	}
	stroke := make([]attr.Point, m)
	for i := range stroke {
		stroke[i] = attr.Point{X: int32(i), Y: int32(i % 400)}
	}
	before := cl.TotalBytes()
	start := time.Now()
	if err := cl.Clients[0].DispatchChecked(&widget.Event{
		Path: "/display", Name: widget.EventDraw,
		Args: []attr.Value{attr.PointList(stroke...)},
	}); err != nil {
		return 0, 0, err
	}
	// Wait until the student's canvas holds the stroke.
	deadline := time.Now().Add(10 * time.Second)
	for {
		w, err := cl.Clients[1].Registry().Lookup("/display")
		if err != nil {
			return 0, 0, err
		}
		if len(w.Attr(widget.AttrStrokes).AsPointList()) == m {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("direct coupling did not converge")
		}
		time.Sleep(100 * time.Microsecond)
	}
	return time.Since(start), cl.TotalBytes() - before, nil
}

// runIndirectCoupling couples only the term fields; the displays regenerate
// locally from the replicated term.
func runIndirectCoupling(m int) (time.Duration, int64, error) {
	spec := `form env title="env"
  textfield term value="x"
  canvas display width=640 height=400`
	cl, err := NewCluster(2, spec, 0, server.Options{}, client.Options{})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	// Wire local regeneration in both environments, at the requested
	// resolution.
	for _, cli := range cl.Clients {
		reg := cli.Registry()
		w, err := reg.Lookup("/env/term")
		if err != nil {
			return 0, 0, err
		}
		if err := w.AddCallback(widget.EventChanged, func(e *widget.Event) {
			classroom.RenderTerm(reg, "/env/display", e.Args[0].AsString(), m)
		}); err != nil {
			return 0, 0, err
		}
	}
	if err := cl.DeclareAll("/env"); err != nil {
		return 0, 0, err
	}
	if err := cl.Clients[0].Couple("/env/term", cl.Clients[1].Ref("/env/term")); err != nil {
		return 0, 0, err
	}
	if err := cl.WaitCoupled("/env/term", 1); err != nil {
		return 0, 0, err
	}
	before := cl.TotalBytes()
	start := time.Now()
	if err := cl.Clients[0].DispatchChecked(&widget.Event{
		Path: "/env/term", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("2*x^2 - 3*x + 1")},
	}); err != nil {
		return 0, 0, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		w, err := cl.Clients[1].Registry().Lookup("/env/display")
		if err != nil {
			return 0, 0, err
		}
		if len(w.Attr(widget.AttrStrokes).AsPointList()) == m {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("indirect coupling did not converge")
		}
		time.Sleep(100 * time.Microsecond)
	}
	return time.Since(start), cl.TotalBytes() - before, nil
}
