# Development targets. `make verify` is the PR gate: vet plus race-checked
# tests over the packages whose correctness rests on the server's
# serialized-loop invariants.

GO ?= go

.PHONY: all build test race vet verify bench chaos chaos-sharded chaos-restart chaos-compact load-smoke lint-metrics

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the coupling core: the server state loop, the lock table, and
# the client runtime are the packages with real goroutine interleavings.
race:
	$(GO) test -race ./internal/server/... ./internal/lock/... ./internal/client/...

# Cross-checks the metric names registered in code against the README's
# metric table, so the documented observability surface cannot drift.
lint-metrics:
	$(GO) run ./internal/tools/metriclint

verify: vet lint-metrics race

# Soak the fault-injection tests: hung, partitioned, evicted, resumed and
# duplicated connections, repeated under the race detector — once over the
# plain protocol and once with wire batching forced on every harness server
# and client (COSOFT_BATCH_LIMIT), so every failure scenario also runs
# against the packed fan-out path.
chaos:
	$(GO) test -race -run Chaos -count=3 ./...
	COSOFT_BATCH_LIMIT=8 $(GO) test -race -run Chaos -count=3 ./...

# The same soak with four state shards forced on every harness server, so
# fault injection also exercises cross-shard cleanup (dropClient fan-out,
# migrated pending events) under the race detector. CI runs this as a
# second matrix leg.
chaos-sharded:
	COSOFT_SHARDS=4 $(MAKE) chaos

# Kill-and-restart soak for the durable event log: a server with an always-sync
# log is restarted repeatedly under live traffic while the clients ride through
# on session resume; afterwards the log must hold every acknowledged event.
# Runs race-checked, plain and with shards + batching forced.
chaos-restart:
	$(GO) test -race -run ChaosRestart -count=3 ./internal/server/
	COSOFT_SHARDS=4 COSOFT_BATCH_LIMIT=8 $(GO) test -race -run ChaosRestart -count=3 ./internal/server/

# Kill-and-restart soak with snapshots + compaction live underneath the
# traffic: a tight snapshot cadence and tiny segments force continuous
# snapshot writes and segment deletes while the server is killed repeatedly;
# afterwards the directory must fsck clean, every client must still work
# under its original identity, and the segment bytes left on disk must be
# bounded below everything appended. Runs race-checked, plain and with
# shards + batching forced.
chaos-compact:
	$(GO) test -race -run ChaosCompact -count=3 ./internal/server/
	COSOFT_SHARDS=4 COSOFT_BATCH_LIMIT=8 $(GO) test -race -run ChaosCompact -count=3 ./internal/server/

# Regenerates BENCH_obs.json (the metrics trajectory) along with the paper
# benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Exercises the cosoft-load generator end to end against an in-process
# server — 64 clients in 2 groups for ~5 seconds — so the load harness
# itself cannot rot. Reports only; no trajectory row is written.
load-smoke:
	$(GO) run ./cmd/cosoft-load -groups 2 -group-size 32 -duration 5s
