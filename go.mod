module cosoft

go 1.22
