package cosoft_test

// One benchmark per reproduced table/figure (see DESIGN.md §4). The
// benchmarks wrap the experiment harnesses in internal/experiments with
// fixed parameters so `go test -bench=.` regenerates every row family; the
// cmd/experiments binary prints the full sweeps.

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cosoft"
	"cosoft/internal/attr"
	"cosoft/internal/benchio"
	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/experiments"
	"cosoft/internal/netsim"
	"cosoft/internal/obs"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// BenchmarkTable1Architectures runs the full capability probe suite of the
// paper's comparison table (E1).
func BenchmarkTable1Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkArch measures the per-interaction response time of each
// architecture under the mixed workload (E2 / Figures 1-3).
func BenchmarkArch(b *testing.B) {
	params := experiments.ArchParams{
		Users:          []int{4},
		Latencies:      []time.Duration{0},
		EventsPerUser:  8,
		SharedFraction: 0.25,
	}
	archs := []string{"multiplex", "ui-replicated", "cosoft"}
	for _, arch := range archs {
		b.Run(arch, func(b *testing.B) {
			var perEvent time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := experiments.ArchComparison(params)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Architecture == arch {
						perEvent = r.PerEvent
					}
				}
			}
			b.ReportMetric(float64(perEvent.Nanoseconds()), "ns/event")
		})
	}
}

// BenchmarkStateVsAction compares re-synchronization strategies after 100
// missed actions (E3 / §3.1).
func BenchmarkStateVsAction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StateVsAction([]int{100})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(float64(r.ReplayTime.Nanoseconds()), "ns/replay")
		b.ReportMetric(float64(r.StateCopyTime.Nanoseconds()), "ns/statecopy")
	}
}

// BenchmarkFloorControl measures the floor-control cost per character at
// fine and coarse event granularity (E4 / §3.2).
func BenchmarkFloorControl(b *testing.B) {
	for _, chars := range []int{1, 64} {
		b.Run(map[int]string{1: "chars-1", 64: "chars-64"}[chars], func(b *testing.B) {
			var perChar time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := experiments.FloorControl(256, []int{chars})
				if err != nil {
					b.Fatal(err)
				}
				perChar = rows[0].PerChar
			}
			b.ReportMetric(float64(perChar.Nanoseconds()), "ns/char")
		})
	}
}

// BenchmarkSCompat measures the mapping search of §3.3 (E5).
func BenchmarkSCompat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CompatMatching([]int{6}, []int{3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].NaiveVisits), "naive-visits")
		b.ReportMetric(float64(rows[0].HeurVisits), "heur-visits")
	}
}

// BenchmarkTORIQueryCoupling compares multiple evaluation against
// evaluate-once-and-share (E6 / §4).
func BenchmarkTORIQueryCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TORIQueryCoupling([]int{10000}, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].ReexecTime.Nanoseconds()), "ns/reexec")
		b.ReportMetric(float64(rows[0].ShareTime.Nanoseconds()), "ns/share")
	}
}

// BenchmarkIndirectCoupling compares direct and indirect coupling of a
// 4096-point dependent display (E7 / §4).
func BenchmarkIndirectCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.IndirectCoupling([]int{4096})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].DirectBytes), "direct-bytes")
		b.ReportMetric(float64(rows[0].IndirectBytes), "indirect-bytes")
	}
}

// BenchmarkOrdering compares centralized locking against optimistic
// timestamp ordering at 50% contention (E8 / §2.1).
func BenchmarkOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OrderingComparison(3, 20, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].CentralTime.Nanoseconds()), "ns/central")
		b.ReportMetric(float64(rows[0].OptimisticTime.Nanoseconds()), "ns/optimistic")
	}
}

// BenchmarkHistory walks an 8-deep undo/redo stack (E9 / §2.1).
func BenchmarkHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.HistoryWalk([]int{8})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].UndoCorrect || !rows[0].RedoCorrect {
			b.Fatal("history walk incorrect")
		}
	}
}

// BenchmarkCoupledEvent measures the end-to-end cost of one synchronized
// high-level event between two coupled instances (the model's primitive
// operation).
func BenchmarkCoupledEvent(b *testing.B) {
	cl, err := experiments.NewCluster(2, `textfield field value=""`, 0,
		server.Options{}, client.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if err := cl.DeclareAll("/field"); err != nil {
		b.Fatal(err)
	}
	if err := cl.CoupleStar("/field"); err != nil {
		b.Fatal(err)
	}
	vals := []attr.Value{attr.String("benchmark payload")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := &widget.Event{Path: "/field", Name: widget.EventChanged, Args: vals}
		if _, err := experiments.DispatchRetry(cl.Clients[0], ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalEvent measures an uncoupled event for contrast — the "many
// operations can be performed locally" path of the replicated architecture.
func BenchmarkLocalEvent(b *testing.B) {
	reg := cosoft.NewRegistry()
	cosoft.MustBuild(reg, "/", `textfield field value=""`)
	vals := []cosoft.Value{cosoft.String("benchmark payload")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := &cosoft.Event{Path: "/field", Name: cosoft.EventChanged, Args: vals}
		if err := reg.Dispatch(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLockingVariants is the ablation for DESIGN.md decision 2: the
// paper's sequential lock-all-or-undo group locking vs. the deterministic
// ordered variant, under contention from four users.
func BenchmarkLockingVariants(b *testing.B) {
	for _, ordered := range []bool{false, true} {
		name := "paper-sequential"
		if ordered {
			name = "ordered"
		}
		b.Run(name, func(b *testing.B) {
			cl, err := experiments.NewCluster(4, `textfield field value=""`, 0,
				server.Options{OrderedLocking: ordered}, client.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if err := cl.DeclareAll("/field"); err != nil {
				b.Fatal(err)
			}
			if err := cl.CoupleStar("/field"); err != nil {
				b.Fatal(err)
			}
			vals := []attr.Value{attr.String("x")}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := &widget.Event{Path: "/field", Name: widget.EventChanged, Args: vals}
				if _, err := experiments.DispatchRetry(cl.Clients[i%4], ev); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(cl.Srv.Stats().LockFailures), "lock-denials")
		})
	}
}

// BenchmarkEvent is the observability gate for the event hot path: the
// metrics-off variant (obs.Disabled, no tracer) must show no added
// allocations over the seed event path — it additionally gates every
// tracing call the event path grew at exactly zero allocations when
// disabled — while the metrics-on and tracing-on variants append rows to
// the BENCH_obs.json trajectory consumed by later performance PRs.
func BenchmarkEvent(b *testing.B) {
	for _, mode := range []string{"metrics-off", "metrics-on", "tracing-on"} {
		b.Run(mode, func(b *testing.B) {
			var sink obs.Sink = obs.Disabled
			var reg *obs.Registry
			var sopts server.Options
			var copts client.Options
			if mode != "metrics-off" {
				reg = obs.NewRegistry()
				sink = reg
			}
			if mode == "tracing-on" {
				tr := obs.NewTracer(0)
				sopts.Tracer = tr
				sopts.Flight = obs.NewFlightRecorder(0)
				copts.Tracer = tr
			}
			sopts.Metrics = sink
			cl, err := experiments.NewCluster(2, `textfield field value=""`, 0, sopts, copts)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if err := cl.DeclareAll("/field"); err != nil {
				b.Fatal(err)
			}
			if err := cl.CoupleStar("/field"); err != nil {
				b.Fatal(err)
			}
			vals := []attr.Value{attr.String("benchmark payload")}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := &widget.Event{Path: "/field", Name: widget.EventChanged, Args: vals}
				if _, err := experiments.DispatchRetry(cl.Clients[0], ev); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mode == "metrics-off" {
				gateDisabledTracingAllocs(b)
				gateDisabledFamilyAllocs(b)
			}
			if reg != nil {
				stats := cl.Srv.Stats()
				b.ReportMetric(stats.EventRTT.P50, "p50-rtt-ns")
				b.ReportMetric(stats.EventRTT.P99, "p99-rtt-ns")
				writeBenchTrajectory(b, "BenchmarkEvent/"+mode, reg, stats)
			}
		})
	}

	// The batched pair measures the wire-batching win on the Exec fan-out
	// hot path. Both variants share a wider topology — one hub object on the
	// origin coupled to fanWidth members on the peer instance, so every
	// event produces a fanWidth-Exec run down a single connection — and
	// differ only in whether the batch extension is negotiated: off sends
	// each Exec (and each ExecAck back) as its own frame, on packs the run
	// into Batch frames answered by coalesced BatchAcks. Unlike the variants
	// above this pair runs over real loopback TCP, where every frame costs a
	// syscall and a reader wakeup — the per-frame overhead batching exists
	// to amortize; an in-process channel transport would hide it.
	for _, mode := range []string{"batched-off", "batched-on"} {
		var sopts server.Options
		batching := false
		if mode == "batched-on" {
			sopts.BatchLimit = 64
			batching = true
		}
		b.Run(mode, func(b *testing.B) {
			fanoutBench(b, "BenchmarkEvent/"+mode, sopts, batching, mode == "batched-on")
		})
	}

	// The encode-once pair isolates the shared-body optimization: both
	// variants batch (the PR 5 baseline), and differ only in whether the
	// broadcast's Exec body is encoded once into a shared buffer or
	// re-encoded per member. The trajectory rows record B/event and
	// allocs/event alongside server.bytes_encoded, whose ~fanWidth-times
	// drop is the optimization's signature.
	for _, mode := range []string{"encode-once-off", "encode-once-on"} {
		sopts := server.Options{BatchLimit: 64, DisableEncodeOnce: mode == "encode-once-off"}
		b.Run(mode, func(b *testing.B) {
			fanoutBench(b, "BenchmarkEvent/"+mode, sopts, true, false)
		})
	}

	// The straggler-attribution pair isolates the per-member accounting the
	// group health plane added to the ack hot path: both variants batch and
	// run with metrics on (the realistic deployment), and differ only in
	// whether each ExecAck charges its latency to the acking member's family
	// entry. The entry pointer is cached per client at admission, so the on
	// variant's cost is a handful of atomics per ack — the trajectory rows
	// record the p50 RTT delta and the per-event allocation counts that gate
	// the <5% overhead acceptance criterion.
	for _, mode := range []string{"straggler-attr-off", "straggler-attr-on"} {
		sopts := server.Options{BatchLimit: 64, DisableMemberAttribution: mode == "straggler-attr-off"}
		b.Run(mode, func(b *testing.B) {
			fanoutBench(b, "BenchmarkEvent/"+mode, sopts, true, false)
		})
	}

	// The shards pair measures per-group parallelism: eight independent
	// coupling groups driven concurrently, first against the classic single
	// state loop and then with the group-scoped state partitioned across
	// four shard loops. Groups never share locks, history or pending
	// events, so on a multi-core host the sharded variant's throughput
	// should approach min(4, GOMAXPROCS)× the single-loop row; the
	// trajectory rows carry num_cpu so a one-core CI runner's flat result
	// is not mistaken for a regression.
	for _, mode := range []string{"shards-1", "shards-4"} {
		nshards := 1
		if mode == "shards-4" {
			nshards = 4
		}
		b.Run(mode, func(b *testing.B) {
			multiGroupBench(b, "BenchmarkEvent/"+mode, nshards)
		})
	}

	// The durable trio prices the append-before-ack event log on the coupled
	// event hot path. off is the in-memory baseline; interval acks once the
	// record's bytes are written, group-committing fsyncs on a timer — the
	// recommended deployment; always fsyncs inside every acknowledgement, the
	// full price of "an acked event survives kill -9". The trajectory rows
	// carry the server.log.* counters so later PRs can watch bytes-per-event
	// and fsyncs-per-event alongside the RTT deltas.
	for _, mode := range []string{"durable-off", "durable-interval", "durable-always"} {
		b.Run(mode, func(b *testing.B) {
			durableBench(b, "BenchmarkEvent/"+mode, mode)
		})
	}
}

// durableBench runs one BenchmarkEvent durable variant: the coupled-pair
// topology over real loopback TCP (fsync latency only matters against real
// I/O timing), with the server's event log in a fresh directory per
// invocation so the harness's calibration reruns never replay a prior run.
func durableBench(b *testing.B, bench, mode string) {
	reg := obs.NewRegistry()
	sopts := server.Options{Metrics: reg}
	if mode != "durable-off" {
		sync := eventlog.SyncInterval
		if mode == "durable-always" {
			sync = eventlog.SyncAlways
		}
		elog, err := eventlog.Open(eventlog.Options{Dir: b.TempDir(), Sync: sync, Metrics: reg})
		if err != nil {
			b.Fatal(err)
		}
		defer elog.Close()
		sopts.EventLog = elog
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(sopts)
	go srv.Serve(lis)
	defer srv.Close()
	defer lis.Close()
	mkClient := func(user string) *cosoft.Client {
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		wreg := cosoft.NewRegistry()
		cosoft.MustBuild(wreg, "/", `textfield field value=""`)
		c, err := client.New(conn, client.Options{
			AppType: "bench", User: user, Host: "bench", Registry: wreg,
			RPCTimeout: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	origin := mkClient("origin")
	defer origin.Close()
	member := mkClient("member")
	defer member.Close()
	if err := origin.Declare("/field"); err != nil {
		b.Fatal(err)
	}
	if err := member.Declare("/field"); err != nil {
		b.Fatal(err)
	}
	if err := origin.Couple("/field", member.Ref("/field")); err != nil {
		b.Fatal(err)
	}
	vals := []attr.Value{attr.String("benchmark payload")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := &widget.Event{Path: "/field", Name: widget.EventChanged, Args: vals}
		if _, err := experiments.DispatchRetry(origin, ev); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := srv.Stats()
	b.ReportMetric(stats.EventRTT.P50, "p50-rtt-ns")
	b.ReportMetric(stats.EventRTT.P99, "p99-rtt-ns")
	writeBenchTrajectory(b, bench, reg, stats)
}

// multiGroupBench runs one BenchmarkEvent shards variant: groupCount
// independent origin↔member pairs over real loopback TCP, every origin
// dispatching its share of b.N events from its own goroutine so the server
// sees all groups contending at once.
func multiGroupBench(b *testing.B, bench string, shards int) {
	const groupCount = 8
	var spec strings.Builder
	for g := 0; g < groupCount; g++ {
		fmt.Fprintf(&spec, "textfield g%d value=\"\"\n", g)
	}
	reg := obs.NewRegistry()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Options{Shards: shards, Metrics: reg})
	go srv.Serve(lis)
	defer srv.Close()
	defer lis.Close()
	mkClient := func(user string) *cosoft.Client {
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		wreg := cosoft.NewRegistry()
		cosoft.MustBuild(wreg, "/", spec.String())
		c, err := client.New(conn, client.Options{
			AppType: "bench", User: user, Host: "bench", Registry: wreg,
			RPCTimeout: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	origins := make([]*cosoft.Client, groupCount)
	for g := 0; g < groupCount; g++ {
		path := fmt.Sprintf("/g%d", g)
		origins[g] = mkClient(fmt.Sprintf("origin%d", g))
		defer origins[g].Close()
		member := mkClient(fmt.Sprintf("member%d", g))
		defer member.Close()
		if err := origins[g].Declare(path); err != nil {
			b.Fatal(err)
		}
		if err := member.Declare(path); err != nil {
			b.Fatal(err)
		}
		if err := origins[g].Couple(path, member.Ref(path)); err != nil {
			b.Fatal(err)
		}
	}
	vals := []attr.Value{attr.String("benchmark payload")}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < groupCount; g++ {
		n := b.N / groupCount
		if g < b.N%groupCount {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			path := fmt.Sprintf("/g%d", g)
			for i := 0; i < n; i++ {
				ev := &widget.Event{Path: path, Name: widget.EventChanged, Args: vals}
				if _, err := experiments.DispatchRetry(origins[g], ev); err != nil {
					b.Error(err)
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
	b.StopTimer()
	stats := srv.Stats()
	b.ReportMetric(stats.EventRTT.P50, "p50-rtt-ns")
	b.ReportMetric(stats.EventRTT.P99, "p99-rtt-ns")
	writeBenchTrajectory(b, bench, reg, stats, map[string]float64{
		"shards":  float64(shards),
		"groups":  groupCount,
		"num_cpu": float64(runtime.NumCPU()),
	})
}

// fanoutBench runs one BenchmarkEvent fan-out variant: one hub object on the
// origin coupled to fanWidth members on a peer instance over real loopback
// TCP. Besides the RTT metrics it measures whole-process B/event and
// allocs/event across the timed loop (runtime.MemStats deltas — both client
// processes included, so the numbers are comparable across variants, not
// absolute server costs) and appends everything to the trajectory.
func fanoutBench(b *testing.B, bench string, sopts server.Options, batching, gateCoalesced bool) {
	const fanWidth = 32
	var spec strings.Builder
	spec.WriteString("textfield hub value=\"\"\n")
	for i := 0; i < fanWidth; i++ {
		fmt.Fprintf(&spec, "textfield m%d value=\"\"\n", i)
	}
	reg := obs.NewRegistry()
	sopts.Metrics = reg
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(sopts)
	go srv.Serve(lis)
	defer srv.Close()
	defer lis.Close()
	mkClient := func(user string) *cosoft.Client {
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		wreg := cosoft.NewRegistry()
		cosoft.MustBuild(wreg, "/", spec.String())
		c, err := client.New(conn, client.Options{
			AppType: "bench", User: user, Host: "bench", Registry: wreg,
			RPCTimeout: 30 * time.Second, Batching: batching,
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	origin := mkClient("origin")
	defer origin.Close()
	peer := mkClient("peer")
	defer peer.Close()
	if err := origin.Declare("/hub"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < fanWidth; i++ {
		path := fmt.Sprintf("/m%d", i)
		if err := peer.Declare(path); err != nil {
			b.Fatal(err)
		}
		if err := origin.Couple("/hub", peer.Ref(path)); err != nil {
			b.Fatal(err)
		}
	}
	vals := []attr.Value{attr.String("benchmark payload")}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := &widget.Event{Path: "/hub", Name: widget.EventChanged, Args: vals}
		if _, err := experiments.DispatchRetry(origin, ev); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	stats := srv.Stats()
	// Whether any single event's fan-out gets packed depends on how
	// the writer goroutine races the state loop, so only a run long
	// enough to average that out is gated (the framework's N=1
	// discovery pass is not).
	if gateCoalesced && b.N >= 50 && stats.AcksCoalesced == 0 {
		b.Fatal("batched-on run never coalesced an ack")
	}
	bytesPerEvent := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(b.N)
	allocsPerEvent := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	b.ReportMetric(stats.EventRTT.P50, "p50-rtt-ns")
	b.ReportMetric(stats.EventRTT.P99, "p99-rtt-ns")
	b.ReportMetric(float64(stats.AcksCoalesced), "acks-coalesced")
	b.ReportMetric(bytesPerEvent, "B/event")
	b.ReportMetric(allocsPerEvent, "allocs/event")
	writeBenchTrajectory(b, bench, reg, stats, map[string]float64{
		"b_per_event":         bytesPerEvent,
		"allocs_per_event":    allocsPerEvent,
		"bytes_encoded":       float64(stats.BytesEncoded),
		"body_pool_hits":      float64(stats.BodyPoolHits),
		"body_pool_misses":    float64(stats.BodyPoolMisses),
		"bytes_enc_per_event": float64(stats.BytesEncoded) / float64(b.N),
	})
}

// discardConn is a net.Conn that swallows writes, so BenchmarkBroadcastEncode
// can measure the server-side encode path alone.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkBroadcastEncode isolates the acceptance criterion of the
// encode-once PR: allocations per broadcast event on the server's send path
// must be independent of fan-out. One iteration encodes a shared Exec body
// once and writes it to every member connection; the per-op allocation
// count must stay flat from fan-out 1 to 512 (pooled body, per-conn scratch,
// no per-member materialization).
func BenchmarkBroadcastEncode(b *testing.B) {
	origin := couple.ObjectRef{Instance: "bench", Path: "/hub"}
	vals := []attr.Value{attr.String("benchmark payload")}
	for _, fanout := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("fanout-%d", fanout), func(b *testing.B) {
			conns := make([]*wire.Conn, fanout)
			paths := make([]string, fanout)
			for i := range conns {
				conns[i] = wire.NewConn(discardConn{})
				paths[i] = fmt.Sprintf("/m%d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				se := wire.NewSharedExec(uint64(i+1), "changed", vals, origin)
				for j, c := range conns {
					se.Ref()
					o := wire.Outgoing{Shared: se, Target: paths[j]}
					if err := c.WriteOutgoing(o); err != nil {
						b.Fatal(err)
					}
					se.Release()
				}
				se.Release()
			}
			b.StopTimer()
			if n := wire.LiveSharedBodies(); n != 0 {
				b.Fatalf("leaked %d shared bodies", n)
			}
		})
	}
}

// BenchmarkReconnect measures one full recovery cycle of the fault-tolerance
// layer: connection loss, backoff, session resume reclaiming the instance
// ID, re-declaration, re-coupling and the CopyFrom state pull. The metric
// snapshot (server.resumes, server.copies) is appended to the BENCH_obs.json
// trajectory.
func BenchmarkReconnect(b *testing.B) {
	reg := obs.NewRegistry()
	srv := server.New(server.Options{Metrics: reg})
	defer srv.Close()
	serve := func(conn net.Conn) {
		go srv.HandleConn(wire.NewConn(conn))
	}

	newClient := func(user string, rec *client.ReconnectOptions) *cosoft.Client {
		wreg := cosoft.NewRegistry()
		cosoft.MustBuild(wreg, "/", `textfield field value=""`)
		link := netsim.NewLink(0)
		serve(link.B)
		c, err := client.New(link.A, client.Options{
			AppType: "editor", User: user, Host: "bench", Registry: wreg,
			RPCTimeout: 5 * time.Second, Reconnect: rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}

	a := newClient("alice", nil)
	defer a.Close()

	var mu sync.Mutex
	var cur net.Conn // b's live client-side conn; closing it forces a reconnect
	resynced := make(chan error, 1)
	rec := &client.ReconnectOptions{
		Dial: func() (net.Conn, error) {
			link := netsim.NewLink(0)
			serve(link.B)
			mu.Lock()
			cur = link.A
			mu.Unlock()
			return link.A, nil
		},
		BaseDelay: time.Millisecond,
		MaxDelay:  time.Millisecond,
		Seed:      1,
		OnResync:  func(err error) { resynced <- err },
	}
	wregB := cosoft.NewRegistry()
	cosoft.MustBuild(wregB, "/", `textfield field value=""`)
	linkB := netsim.NewLink(0)
	serve(linkB.B)
	cur = linkB.A
	cb, err := client.New(linkB.A, client.Options{
		AppType: "editor", User: "bob", Host: "bench", Registry: wregB,
		RPCTimeout: 5 * time.Second, Reconnect: rec,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cb.Close()

	if err := a.Declare("/field"); err != nil {
		b.Fatal(err)
	}
	if err := cb.Declare("/field"); err != nil {
		b.Fatal(err)
	}
	if err := cb.Couple("/field", a.Ref("/field")); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		conn := cur
		mu.Unlock()
		conn.Close()
		if err := <-resynced; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := srv.Stats()
	if stats.Resumes < uint64(b.N) {
		b.Fatalf("resumes = %d, want >= %d", stats.Resumes, b.N)
	}
	writeBenchTrajectory(b, "BenchmarkReconnect", reg, stats)
}

// BenchmarkRestartReplay prices a durable restart over a 50k-event log. The
// from-zero variant replays every record on each Open+New; the from-snapshot
// variant restarts the same directory after one snapshot+compaction cycle
// and must replay zero log records — the snapshot covers the whole log, so
// startup cost becomes O(state), not O(history). Both append rows to the
// BENCH_obs.json trajectory; the from-snapshot row's server.log.replayed
// counter staying at zero is the bounded-replay acceptance gate.
func BenchmarkRestartReplay(b *testing.B) {
	const events = 50_000
	dir := b.TempDir()
	seedRestartLog(b, dir, events)

	// from-zero runs first: its restarts must see the uncompacted log, and
	// the from-snapshot prep below compacts the shared directory.
	b.Run("from-zero", func(b *testing.B) {
		reg := obs.NewRegistry()
		var stats cosoft.ServerStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			elog, err := eventlog.Open(eventlog.Options{Dir: dir, Metrics: reg})
			if err != nil {
				b.Fatal(err)
			}
			srv := server.New(server.Options{EventLog: elog, ReplayTail: true})
			stats = srv.Stats()
			srv.Close()
			if err := elog.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		counters := reg.Snapshot().Counters
		replayed := counters["server.log.replayed"]
		if replayed < uint64(events)*uint64(b.N) {
			b.Fatalf("from-zero replayed %d records over %d restarts; want >= %d per restart",
				replayed, b.N, events)
		}
		writeBenchTrajectory(b, "BenchmarkRestartReplay/from-zero", reg, stats, map[string]float64{
			"events":               events,
			"replayed_per_restart": float64(replayed) / float64(b.N),
		})
	})

	b.Run("from-snapshot", func(b *testing.B) {
		// Prep (untimed): one incarnation snapshots the folded state at the
		// log's end and compacts the segments behind it.
		elogPrep, err := eventlog.Open(eventlog.Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		srvPrep := server.New(server.Options{EventLog: elogPrep, ReplayTail: true})
		if err := srvPrep.Snapshot(); err != nil {
			b.Fatal(err)
		}
		srvPrep.Close()
		if err := elogPrep.Close(); err != nil {
			b.Fatal(err)
		}

		reg := obs.NewRegistry()
		var stats cosoft.ServerStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			elog, err := eventlog.Open(eventlog.Options{Dir: dir, Metrics: reg})
			if err != nil {
				b.Fatal(err)
			}
			srv := server.New(server.Options{EventLog: elog, ReplayTail: true})
			stats = srv.Stats()
			srv.Close()
			if err := elog.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		counters := reg.Snapshot().Counters
		if got := counters["server.log.replay_from_snapshot"]; got != uint64(b.N) {
			b.Fatalf("%d of %d restarts replayed from the snapshot", got, b.N)
		}
		if replayed := counters["server.log.replayed"]; replayed != 0 {
			b.Fatalf("from-snapshot restarts replayed %d log records; want 0 (snapshot covers the log)", replayed)
		}
		writeBenchTrajectory(b, "BenchmarkRestartReplay/from-snapshot", reg, stats, map[string]float64{
			"events":               events,
			"replayed_per_restart": 0,
		})
	})
}

// seedRestartLog writes the fixed restart-replay workload: two registered
// instances, one coupled object pair, then `events` committed Exec records —
// the same record shapes a live session appends, without paying for 50k
// round-trips.
func seedRestartLog(b *testing.B, dir string, events int) {
	b.Helper()
	elog, err := eventlog.Open(eventlog.Options{Dir: dir, Sync: eventlog.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	app := func(rec eventlog.Record) {
		if err := elog.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	refA := couple.ObjectRef{Instance: "app-1", Path: "/x"}
	refB := couple.ObjectRef{Instance: "app-2", Path: "/x"}
	for i, id := range []string{"app-1", "app-2"} {
		app(eventlog.Record{Kind: eventlog.KindRegister, Origin: id, Env: wire.Envelope{
			Msg: wire.Register{AppType: "app", Host: "bench", User: fmt.Sprintf("u%d", i+1)},
		}})
		app(eventlog.Record{Kind: eventlog.KindDeclare, Origin: id, Env: wire.Envelope{
			Msg: wire.Declare{Path: "/x", Class: "textfield"},
		}})
	}
	app(eventlog.Record{Kind: eventlog.KindCouple, Origin: "app-1", Env: wire.Envelope{
		Msg: wire.Couple{From: refA, To: refB},
	}})
	vals := []attr.Value{attr.String("benchmark payload")}
	for i := 1; i <= events; i++ {
		app(eventlog.Record{Kind: eventlog.KindEvent, Origin: "app-1", Env: wire.Envelope{
			Msg: wire.Exec{EventID: uint64(i), TargetPath: "/x", Name: "changed", Args: vals, Origin: refA},
		}})
	}
	if err := elog.Close(); err != nil {
		b.Fatal(err)
	}
}

// gateDisabledTracingAllocs fails the benchmark if any tracing call shape
// the event path uses allocates when tracing is disabled (nil tracer, nil
// flight recorder) — the contract that keeps the metrics-off variant
// byte-for-byte as cheap as the seed event path.
func gateDisabledTracingAllocs(b *testing.B) {
	var tr *obs.Tracer
	var fr *obs.FlightRecorder
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartRoot("client.event_send", "inst")
		child := tr.StartSpan(sp.Context(), "server.event_arrival", "server")
		tr.Point(child.Context(), "server.exec_send", "server", "")
		child.EndNote("ok")
		sp.End()
		fr.Record("conn", obs.FlightEntry{Type: "Event"})
	})
	if allocs != 0 {
		b.Fatalf("disabled tracing path allocates %.1f times per event", allocs)
	}
}

// gateDisabledFamilyAllocs fails the benchmark if the per-member attribution
// call shape allocates when metrics are disabled: obs.Disabled hands out a
// nil *Family, and every lookup and sub-metric update on it must no-op for
// free — the contract that lets the ack path keep its attribution calls
// unconditionally inline.
func gateDisabledFamilyAllocs(b *testing.B) {
	f := obs.Disabled.Family("server.member", obs.FamilySchema{
		Counters: []string{"acks"}, Hist: "ack_ns", EWMA: "ack_ewma_ns",
	})
	allocs := testing.AllocsPerRun(100, func() {
		e := f.Get("inst")
		e.Hist().Observe(1)
		e.EWMA().Observe(1)
		e.Counter(0).Inc()
		f.Peek("inst")
	})
	if allocs != 0 {
		b.Fatalf("disabled family path allocates %.1f times per ack", allocs)
	}
}

// trajectoryWritten tracks which benchmarks already wrote a row in this
// process, so calibration re-invocations update their row in place.
var trajectoryWritten = map[string]bool{}

// writeBenchTrajectory appends the benchmark's metric snapshot to the
// BENCH_obs.json trajectory at the repo root, so the perf history of
// successive PRs is diffable. The file is a JSON array of rows; a legacy
// single-object file is absorbed as the first row. An optional extras map
// adds derived per-op measurements (B/event, allocs/event, …) to the row.
func writeBenchTrajectory(b *testing.B, bench string, reg *obs.Registry, stats cosoft.ServerStats, extras ...map[string]float64) {
	row := struct {
		Bench    string                 `json:"bench"`
		N        int                    `json:"n"`
		EventRTT cosoft.MetricsSummary  `json:"event_rtt_ns"`
		Snapshot cosoft.MetricsSnapshot `json:"snapshot"`
		Extra    map[string]float64     `json:"extra,omitempty"`
	}{
		Bench:    bench,
		N:        b.N,
		EventRTT: stats.EventRTT,
		Snapshot: reg.Snapshot(),
	}
	for _, m := range extras {
		if row.Extra == nil {
			row.Extra = map[string]float64{}
		}
		for k, v := range m {
			row.Extra[k] = v
		}
	}
	// The harness invokes a benchmark several times while calibrating N;
	// each invocation writes. The final (largest-N) invocation wins: a
	// trailing row this same process wrote for the same benchmark is
	// replaced, while rows from earlier sessions always stay — the file is
	// an append-only trajectory across PRs.
	replace := ""
	if trajectoryWritten[bench] {
		replace = bench
	}
	trajectoryWritten[bench] = true
	if err := benchio.AppendRow("BENCH_obs.json", row, replace); err != nil {
		b.Fatalf("write BENCH_obs.json: %v", err)
	}
}
