// Command cosoft-demo plays the paper's classroom scenario (§4) end to end
// over real TCP connections, printing a transcript: students work locally,
// one raises a hand, the intelligent demon flags another, the teacher
// inspects the inbox, couples with a student's environment, discusses the
// solution publicly, and decouples again.
//
// Usage:
//
//	cosoft-demo [-students 3]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"cosoft/internal/classroom"
	"cosoft/internal/client"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

func main() {
	students := flag.Int("students", 3, "number of student environments")
	flag.Parse()
	if err := run(*students); err != nil {
		fmt.Fprintf(os.Stderr, "cosoft-demo: %v\n", err)
		os.Exit(1)
	}
}

func run(nStudents int) error {
	step := stepPrinter()

	step("starting the coupling server")
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer lis.Close()
	srv := server.New(server.Options{})
	defer srv.Close()
	go srv.Serve(lis) //nolint:errcheck
	addr := lis.Addr().String()
	fmt.Printf("    server on %s\n", addr)

	step("the teacher's presentation environment joins from the electronic blackboard")
	teacher := classroom.NewTeacher()
	tconn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if err := teacher.Attach(tconn, "dr-hoppe", client.Options{RPCTimeout: 10 * time.Second}); err != nil {
		return err
	}
	defer teacher.Detach()
	fmt.Printf("    registered as %s\n", teacher.Client().ID())

	step(fmt.Sprintf("%d student environments join from local workstations", nStudents))
	studentsList := make([]*classroom.Student, nStudents)
	for i := range studentsList {
		s := classroom.NewStudent("plot the function 2x+1 and describe its slope")
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		if err := s.Attach(conn, fmt.Sprintf("student-%d", i+1), client.Options{RPCTimeout: 10 * time.Second}); err != nil {
			return err
		}
		defer s.Detach()
		studentsList[i] = s
		fmt.Printf("    %s registered as %s\n", fmt.Sprintf("student-%d", i+1), s.Client().ID())
	}

	step("students work individually (no coupling, everything local)")
	if err := studentsList[0].SetTerm("2*x+1"); err != nil {
		return err
	}
	if err := studentsList[0].SetAnswer("the slope is 2"); err != nil {
		return err
	}
	if nStudents > 1 {
		if err := studentsList[1].SetTerm("x^2"); err != nil {
			return err
		}
		if err := studentsList[1].SetAnswer("is the slope 2x?"); err != nil {
			return err
		}
	}
	fmt.Printf("    server events so far: %d (individual work stays local)\n", srv.Stats().Events)

	step("student-1 raises a hand; the demon flags student-2's uncertain answer")
	if err := studentsList[0].RaiseHand("please check my solution"); err != nil {
		return err
	}
	if err := waitFor(func() bool { return len(teacher.Inbox()) >= minInbox(nStudents) }); err != nil {
		return fmt.Errorf("inbox: %w", err)
	}
	for _, m := range teacher.Inbox() {
		kind := "request"
		if m.Auto {
			kind = "demon"
		}
		fmt.Printf("    [%s] from %s (%s): %s\n", kind, m.From, m.User, m.Text)
	}

	step("the teacher lists the classroom and inspects student-1's environment")
	infos, err := teacher.Students()
	if err != nil {
		return err
	}
	for _, info := range infos {
		fmt.Printf("    %s  user=%s  %d declared objects\n", info.ID, info.User, len(info.Objects))
	}
	snapshot, err := teacher.InspectStudent(studentsList[0].Client().ID())
	if err != nil {
		return err
	}
	fmt.Printf("    snapshot of %s:/desk —\n%s", studentsList[0].Client().ID(), indent(snapshot.String()))

	step("the teacher couples the blackboard with student-1 (term and answer fields)")
	target := studentsList[0].Client().ID()
	if err := teacher.JoinSession(target, classroom.DefaultPairs()); err != nil {
		return err
	}
	fmt.Println("    coupled via RemoteCouple along the declared correspondences")

	step("the teacher writes a new term; the student's display regenerates locally")
	if err := teacher.SetTerm("2*x^2 - 3*x + 1"); err != nil {
		return err
	}
	if err := waitFor(func() bool {
		w, err := studentsList[0].Registry().Lookup("/desk/term")
		return err == nil && w.Attr(widget.AttrValue).AsString() == "2*x^2 - 3*x + 1"
	}); err != nil {
		return fmt.Errorf("term replication: %w", err)
	}
	w, err := studentsList[0].Registry().Lookup("/desk/display")
	if err != nil {
		return err
	}
	fmt.Printf("    student display regenerated: %d points (only the term crossed the network)\n",
		len(w.Attr(widget.AttrStrokes).AsPointList()))

	step("the student answers; the teacher's public notes update")
	if err := studentsList[0].SetAnswer("parabola, slope 4x-3"); err != nil {
		return err
	}
	if err := waitFor(func() bool {
		w, err := teacher.Registry().Lookup("/board/notes")
		return err == nil && w.Attr(widget.AttrValue).AsString() == "parabola, slope 4x-3"
	}); err != nil {
		return fmt.Errorf("notes replication: %w", err)
	}
	fmt.Println("    notes: parabola, slope 4x-3")

	step("the session ends; the student keeps the discussed state")
	if err := teacher.EndSession(target, classroom.DefaultPairs()); err != nil {
		return err
	}
	if err := teacher.SetTerm("x^3"); err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond)
	wTerm, err := studentsList[0].Registry().Lookup("/desk/term")
	if err != nil {
		return err
	}
	fmt.Printf("    teacher moved on to x^3; decoupled student still shows %q\n",
		wTerm.Attr(widget.AttrValue).AsString())

	stats := srv.Stats()
	fmt.Printf("\nserver totals: %d events broadcast, %d execs, %d lock denials, %d copies, %d live links\n",
		stats.Events, stats.ExecsSent, stats.LockFailures, stats.Copies, stats.Links)
	return nil
}

func minInbox(nStudents int) int {
	if nStudents > 1 {
		return 2 // the raised hand plus the demon's message
	}
	return 1
}

func stepPrinter() func(string) {
	n := 0
	return func(msg string) {
		n++
		fmt.Printf("\n%2d. %s\n", n, msg)
	}
}

func waitFor(cond func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("timed out")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "      " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				lines = append(lines, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
