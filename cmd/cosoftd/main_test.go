package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/faultnet"
	"cosoft/internal/netsim"
	"cosoft/internal/obs"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

func newTestMux(t *testing.T) (*obs.Registry, *obs.Tracer, *obs.FlightRecorder, *httptest.Server) {
	t.Helper()
	metrics := obs.NewRegistry()
	tr := obs.NewTracer(64)
	fr := obs.NewFlightRecorder(8)
	srv := httptest.NewServer(metricsMux(metrics, tr, fr, nil))
	t.Cleanup(srv.Close)
	return metrics, tr, fr, srv
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type = %q, want application/json", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestMetricsEndpointServesJSONSnapshot(t *testing.T) {
	metrics, _, _, srv := newTestMux(t)
	metrics.Counter("server.events").Add(3)
	metrics.Counter("client.execs").Add(1)

	var snap obs.Snapshot
	getJSON(t, srv.URL+"/metrics", &snap)
	if snap.Counters["server.events"] != 3 {
		t.Fatalf("server.events = %d, want 3", snap.Counters["server.events"])
	}
	if snap.Counters["client.execs"] != 1 {
		t.Fatalf("client.execs = %d, want 1", snap.Counters["client.execs"])
	}
}

func TestMetricsEndpointNameFilter(t *testing.T) {
	metrics, _, _, srv := newTestMux(t)
	metrics.Counter("server.events").Add(3)
	metrics.Counter("client.execs").Add(1)
	metrics.Gauge("server.outbox_depth").Set(2)
	metrics.Histogram("client.exec_ns").Observe(10)

	var snap obs.Snapshot
	getJSON(t, srv.URL+"/metrics?name=server.", &snap)
	if _, ok := snap.Counters["server.events"]; !ok {
		t.Fatal("filter dropped server.events")
	}
	if _, ok := snap.Counters["client.execs"]; ok {
		t.Fatal("filter kept client.execs")
	}
	if _, ok := snap.Gauges["server.outbox_depth"]; !ok {
		t.Fatal("filter dropped server.outbox_depth gauge")
	}
	if _, ok := snap.Histograms["client.exec_ns"]; ok {
		t.Fatal("filter kept client.exec_ns histogram")
	}
}

func TestDebugTraceServesSpansAndFlight(t *testing.T) {
	_, tr, fr, srv := newTestMux(t)
	root := tr.StartRoot("client.event_send", "inst-a")
	child := tr.StartSpan(root.Context(), "server.event_arrival", "server")
	child.End()
	root.End()
	fr.Record("inst-a", obs.FlightEntry{Dir: "recv", Type: "Event", Seq: 7})

	var dump traceDump
	getJSON(t, srv.URL+"/debug/trace", &dump)
	if len(dump.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(dump.Spans))
	}
	byName := make(map[string]obs.Span)
	for _, s := range dump.Spans {
		byName[s.Name] = s
	}
	rootSpan, childSpan := byName["client.event_send"], byName["server.event_arrival"]
	if rootSpan.ID == 0 || childSpan.ID == 0 {
		t.Fatalf("missing expected spans, got %+v", dump.Spans)
	}
	if childSpan.Parent != rootSpan.ID {
		t.Fatal("child span does not link to root")
	}
	entries := dump.Flight["inst-a"]
	if len(entries) != 1 || entries[0].Type != "Event" || entries[0].Seq != 7 {
		t.Fatalf("flight entries = %+v", entries)
	}
}

func TestDebugTraceFilterByTraceID(t *testing.T) {
	_, tr, _, srv := newTestMux(t)
	a := tr.StartRoot("client.event_send", "inst-a")
	a.End()
	b := tr.StartRoot("client.event_send", "inst-b")
	b.End()

	var dump traceDump
	getJSON(t, srv.URL+"/debug/trace?trace="+a.Context().Trace.String(), &dump)
	if len(dump.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(dump.Spans))
	}
	if dump.Spans[0].Trace != a.Context().Trace {
		t.Fatalf("got trace %s, want %s", dump.Spans[0].Trace, a.Context().Trace)
	}

	resp, err := http.Get(srv.URL + "/debug/trace?trace=not-hex")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad trace id: status %d, want 400", resp.StatusCode)
	}
}

func TestDebugTraceChromeFormat(t *testing.T) {
	_, tr, _, srv := newTestMux(t)
	sp := tr.StartRoot("client.event_send", "inst-a")
	sp.End()

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	getJSON(t, srv.URL+"/debug/trace?format=chrome", &doc)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace is empty")
	}
	var sawSpan bool
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "client.event_send" && ev["ph"] == "X" {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Fatalf("no complete event for client.event_send in %v", doc.TraceEvents)
	}
}

func TestMetricsMuxBuildsTwiceWithoutPanic(t *testing.T) {
	// expvar.Publish panics on duplicate names; the mux must guard it so
	// tests (and any future multi-listener setup) can build several muxes.
	metricsMux(obs.NewRegistry(), nil, nil, nil)
	metricsMux(obs.NewRegistry(), nil, nil, nil)
}

func TestDebugTraceNilTracerAndFlight(t *testing.T) {
	srv := httptest.NewServer(metricsMux(obs.NewRegistry(), nil, nil, nil))
	defer srv.Close()
	var dump traceDump
	getJSON(t, srv.URL+"/debug/trace", &dump)
	if len(dump.Spans) != 0 || len(dump.Flight) != 0 {
		t.Fatalf("nil tracer/flight produced data: %+v", dump)
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := parseLogLevel(in)
		if err != nil || got != want {
			t.Fatalf("parseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseLogLevel("loud"); err == nil || !strings.Contains(err.Error(), "unknown log level") {
		t.Fatalf("parseLogLevel(loud) err = %v, want unknown-level error", err)
	}
}

// dialMember connects one client to srv over an in-process link, optionally
// degraded by a faultnet schedule wrapped around the server side of the link
// (so Execs toward the member are delayed, inflating its measured ack
// latency).
func dialMember(t *testing.T, srv *server.Server, user string, sched *faultnet.Schedule) *client.Client {
	t.Helper()
	reg := widget.NewRegistry()
	widget.MustBuild(reg, "/", `textfield note value=""`)
	link := netsim.NewLink(0)
	var sc net.Conn = link.B
	if sched != nil {
		fc := faultnet.Wrap(link.B, *sched)
		t.Cleanup(func() { fc.Close() })
		sc = fc
	}
	go srv.HandleConn(wire.NewConn(sc))
	c, err := client.New(link.A, client.Options{
		AppType: "editor", User: user, Host: "testhost",
		Registry: reg, RPCTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial %s: %v", user, err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestDebugGroupsEndToEnd drives a live 3-member coupling group with one
// faultnet-delayed member through a real server, then checks that
// /debug/groups attributes that member as the straggler and that
// /metrics?format=prom exposes the per-member family as labeled series.
func TestDebugGroupsEndToEnd(t *testing.T) {
	metrics := obs.NewRegistry()
	srv := server.New(server.Options{Metrics: metrics})
	t.Cleanup(srv.Close)
	hsrv := httptest.NewServer(metricsMux(metrics, nil, nil, srv))
	t.Cleanup(hsrv.Close)

	a := dialMember(t, srv, "alice", nil)
	b := dialMember(t, srv, "bob", nil)
	c := dialMember(t, srv, "carol", &faultnet.Schedule{Delay: 20 * time.Millisecond})

	for _, cl := range []*client.Client{a, b, c} {
		if err := cl.Declare("/note"); err != nil {
			t.Fatalf("declare: %v", err)
		}
	}
	if err := a.Couple("/note", b.Ref("/note")); err != nil {
		t.Fatalf("couple: %v", err)
	}
	if err := a.Couple("/note", c.Ref("/note")); err != nil {
		t.Fatalf("couple: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c.Coupled("/note") {
		if time.Now().After(deadline) {
			t.Fatal("coupling never reached carol")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		if err := a.Registry().Dispatch(&widget.Event{
			Path: "/note", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
		}); err != nil {
			t.Fatalf("dispatch: %v", err)
		}
		for srv.Stats().PendingEvents != 0 {
			if time.Now().After(deadline) {
				t.Fatal("event never resolved")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	var rep server.HealthReport
	getJSON(t, hsrv.URL+"/debug/groups", &rep)
	if !rep.MemberAttribution {
		t.Fatal("member attribution should be on")
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	g := rep.Groups[0]
	if g.Straggler != string(c.ID()) {
		t.Fatalf("straggler = %q, want %q (members %+v)", g.Straggler, c.ID(), g.Members)
	}
	if len(g.Members) != 3 || g.Members[0].Instance != string(c.ID()) {
		t.Fatalf("members = %+v", g.Members)
	}
	if g.Members[0].LastAcks != 3 {
		t.Fatalf("straggler last_acks = %d, want 3", g.Members[0].LastAcks)
	}
	if len(rep.Loops) == 0 || rep.Loops[0].Name != "global" {
		t.Fatalf("loops = %+v", rep.Loops)
	}

	resp, err := http.Get(hsrv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("GET prom: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read prom: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"cosoft_server_events 3",
		`cosoft_server_member_last_acks{member="` + string(c.ID()) + `"} 3`,
		`cosoft_server_member_ack_ewma_ns{member="` + string(c.ID()) + `"}`,
		`cosoft_server_member_ack_ns_bucket{member="` + string(c.ID()) + `",le="+Inf"} 3`,
		"cosoft_server_global_busy_ns",
		"cosoft_server_shard_0_queue_depth",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
}

func TestDebugGroupsNoServer(t *testing.T) {
	hsrv := httptest.NewServer(metricsMux(obs.NewRegistry(), nil, nil, nil))
	defer hsrv.Close()
	resp, err := http.Get(hsrv.URL + "/debug/groups")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestMetricsPromFormatPrefixFilter(t *testing.T) {
	metrics, _, _, srv := newTestMux(t)
	metrics.Counter("server.events").Add(3)
	metrics.Counter("client.execs").Add(1)
	resp, err := http.Get(srv.URL + "/metrics?format=prom&name=server.")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.Contains(string(body), "cosoft_server_events 3") {
		t.Fatalf("missing server.events: %s", body)
	}
	if strings.Contains(string(body), "client_execs") {
		t.Fatalf("prefix filter kept client.execs: %s", body)
	}
}
