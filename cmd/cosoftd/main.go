// Command cosoftd runs the central coupling server: the controller of the
// COSOFT architecture that coordinates communication between application
// instances, holding the access permissions, registration records,
// historical UI states, and lock table.
//
// With -metrics-addr set, an HTTP listener additionally serves the
// observability surface:
//
//	/metrics          JSON snapshot of every counter, gauge, histogram and
//	                  metric family (?name=<prefix> restricts to matching
//	                  metric names, ?format=prom emits Prometheus text
//	                  exposition format instead)
//	/debug/groups     per-coupling-group health: topology, lock holder,
//	                  pending events, and per-member straggler attribution
//	/debug/trace      recent causal spans and per-connection flight-recorder
//	                  entries (?trace=<hex id> selects one trace,
//	                  ?format=chrome emits Chrome trace-event JSON for
//	                  chrome://tracing / Perfetto)
//	/debug/vars       the same snapshot under expvar ("cosoft"), plus Go runtime vars
//	/debug/pprof/     the standard pprof profiles
//
// Usage:
//
//	cosoftd [-listen :7817] [-metrics-addr :9090] [-history 32]
//	        [-ordered-locking] [-shards N] [-heartbeat 5s] [-event-deadline 10s]
//	        [-outbox-limit 1024] [-batch-limit 32] [-no-encode-once]
//	        [-no-member-attr] [-trace-buffer 4096]
//	        [-flight-depth 64] [-log-level info] [-v]
//	        [-log-dir /var/lib/cosoft/log] [-log-sync interval]
//	        [-log-segment-bytes 67108864] [-no-replay-tail]
//	        [-log-snapshot-interval 1m] [-log-snapshot-bytes N]
//
// With -log-dir set, every state-mutating hop is appended to a durable
// segmented event log before it is acknowledged, and a restarted cosoftd
// replays the log to rebuild its databases — reconnecting clients resume
// with their logged session tokens as if the restart never happened. With
// -log-snapshot-interval and/or -log-snapshot-bytes, cosoftd additionally
// writes periodic state snapshots beside the log and compacts the segments
// they cover, so restart replay starts at the newest snapshot and disk
// stays bounded. cosoftd -log-fsck <dir> scans a log directory offline,
// reports segment, record and snapshot counts, and exits nonzero on CRC
// damage.
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"cosoft/internal/eventlog"
	"cosoft/internal/obs"
	"cosoft/internal/server"
)

func main() {
	listen := flag.String("listen", ":7817", "TCP address to listen on")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for the metrics/trace/expvar/pprof endpoints (empty = disabled)")
	history := flag.Int("history", 0, "per-object historical-state depth (0 = default)")
	ordered := flag.Bool("ordered-locking", false, "use deterministic-order group locking instead of the paper's sequential algorithm")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "number of per-coupling-group state loops (1 = classic single serialized loop)")
	heartbeat := flag.Duration("heartbeat", 0, "liveness ping interval; silent clients are dropped after 3 intervals (0 = disabled)")
	eventDeadline := flag.Duration("event-deadline", 0, "max wait for event acknowledgements before the group unlocks without the stragglers (0 = disabled)")
	outboxLimit := flag.Int("outbox-limit", 0, "per-client outbox high-water mark; clients over it for more than a second are evicted (0 = unbounded)")
	batchLimit := flag.Int("batch-limit", 0, "max envelopes packed into one Batch frame for batch-aware clients (0 or 1 = batching disabled)")
	noEncodeOnce := flag.Bool("no-encode-once", false, "re-encode the Exec body per member on broadcast instead of sharing one encoded buffer (ablation; wire bytes are identical)")
	noMemberAttr := flag.Bool("no-member-attr", false, "skip per-member straggler attribution on the ack path (ablation; /debug/groups reports topology only)")
	traceBuffer := flag.Int("trace-buffer", obs.DefaultTraceBuffer, "causal-trace span ring size (0 = tracing disabled)")
	flightDepth := flag.Int("flight-depth", obs.DefaultFlightDepth, "per-connection flight-recorder depth (0 = disabled)")
	logLevel := flag.String("log-level", "", "structured log level: debug, info, warn or error (empty = logging disabled)")
	logDir := flag.String("log-dir", "", "durable event-log directory; appends before acking and replays on start (empty = durability disabled)")
	logSync := flag.String("log-sync", "interval", "event-log sync policy: always (fsync before every ack), interval, or none")
	logSegBytes := flag.Int64("log-segment-bytes", 0, "event-log segment rotation size in bytes (0 = 64 MiB)")
	logSnapInterval := flag.Duration("log-snapshot-interval", 0, "with -log-dir: write a state snapshot and compact covered segments on this cadence (0 = disabled)")
	logSnapBytes := flag.Int64("log-snapshot-bytes", 0, "with -log-dir: snapshot+compact once this many bytes were appended since the last snapshot (0 = disabled)")
	logFsck := flag.Bool("log-fsck", false, "scan the -log-dir (or the positional argument) offline, report segment/record counts and CRC damage, and exit — nonzero on corruption")
	noReplayTail := flag.Bool("no-replay-tail", false, "with -log-dir: do not replay the group event tail to late joiners at couple time")
	verbose := flag.Bool("v", false, "log registrations and departures")
	flag.Parse()

	if *logFsck {
		dir := *logDir
		if flag.NArg() > 0 {
			dir = flag.Arg(0)
		}
		os.Exit(runFsck(dir))
	}

	metrics := obs.NewRegistry()
	opts := server.Options{
		HistoryDepth:             *history,
		OrderedLocking:           *ordered,
		Shards:                   *shards,
		Heartbeat:                *heartbeat,
		EventDeadline:            *eventDeadline,
		OutboxLimit:              *outboxLimit,
		BatchLimit:               *batchLimit,
		Metrics:                  metrics,
		DisableEncodeOnce:        *noEncodeOnce,
		DisableMemberAttribution: *noMemberAttr,
	}
	if *verbose {
		logger := log.New(os.Stderr, "cosoftd: ", log.LstdFlags|log.Lmicroseconds)
		opts.Logf = logger.Printf
	}
	if *logLevel != "" {
		lvl, err := parseLogLevel(*logLevel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosoftd: %v\n", err)
			os.Exit(2)
		}
		opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}
	// The trace ring and flight recorder only cost anything while the HTTP
	// surface that exposes them is up.
	if *metricsAddr != "" {
		if *traceBuffer > 0 {
			opts.Tracer = obs.NewTracer(*traceBuffer)
		}
		if *flightDepth > 0 {
			opts.Flight = obs.NewFlightRecorder(*flightDepth)
		}
	}

	var elog *eventlog.Log
	if *logDir != "" {
		sync, err := eventlog.ParseSync(*logSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosoftd: %v\n", err)
			os.Exit(2)
		}
		elog, err = eventlog.Open(eventlog.Options{
			Dir:          *logDir,
			Sync:         sync,
			SegmentBytes: *logSegBytes,
			Metrics:      metrics,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosoftd: %v\n", err)
			os.Exit(1)
		}
		defer elog.Close()
		opts.EventLog = elog
		opts.ReplayTail = !*noReplayTail
		opts.SnapshotInterval = *logSnapInterval
		opts.SnapshotBytes = *logSnapBytes
		fmt.Printf("cosoftd: durable event log in %s (sync=%s)\n", *logDir, sync)
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosoftd: listen: %v\n", err)
		os.Exit(1)
	}
	srv := server.New(opts)
	fmt.Printf("cosoftd: coupling server listening on %s\n", lis.Addr())

	if *metricsAddr != "" {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosoftd: metrics listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("cosoftd: metrics on http://%s/metrics, traces on http://%s/debug/trace\n",
			mlis.Addr(), mlis.Addr())
		go func() {
			if err := http.Serve(mlis, metricsMux(metrics, opts.Tracer, opts.Flight, srv)); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "cosoftd: metrics serve: %v\n", err)
			}
		}()
		defer mlis.Close()
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case sig := <-done:
		fmt.Printf("cosoftd: %v — shutting down\n", sig)
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosoftd: serve: %v\n", err)
		}
	}
	lis.Close()
	srv.Close()
	// The state loop is gone after Close (Stats() reports zeros), but the
	// registry's atomics remain readable.
	snap := metrics.Snapshot()
	fmt.Printf("cosoftd: served %d events (%d lock denials), %d copies\n",
		snap.Counters["server.events"], snap.Counters["server.lock_failures"],
		snap.Counters["server.copies"])
	if rtt := snap.Histograms["server.event_rtt_ns"]; rtt.Count > 0 {
		fmt.Printf("cosoftd: event round trip p50=%.0fns p95=%.0fns p99=%.0fns max=%dns (outbox high water %d)\n",
			rtt.P50, rtt.P95, rtt.P99, rtt.Max,
			snap.Gauges["server.outbox_depth"].HighWater)
	}
}

// runFsck scans a durable event-log directory without opening it for
// append, reporting what a recovery replay would see. Exit codes: 0 clean
// (a torn tail is clean — it is the expected crash signature and open would
// truncate it), 1 corruption before the tail (acknowledged records are
// unreadable), 2 usage or I/O error.
func runFsck(dir string) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "cosoftd: -log-fsck needs a log directory (-log-dir or positional)")
		return 2
	}
	rep, err := eventlog.Fsck(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosoftd: fsck %s: %v\n", dir, err)
		return 2
	}
	fmt.Printf("cosoftd: %s: %d segment(s), %d record(s), %d byte(s) valid\n",
		dir, rep.Segments, rep.Records, rep.Bytes)
	if rep.Snapshots > 0 || rep.BadSnapshots > 0 {
		fmt.Printf("cosoftd: %d snapshot(s) (%d damaged); replay starts at offset %d\n",
			rep.Snapshots, rep.BadSnapshots, rep.SnapshotOffset)
	}
	if rep.Corrupt {
		fmt.Fprintf(os.Stderr, "cosoftd: CORRUPT: %s\n", rep.Detail)
		return 1
	}
	if rep.TornTail {
		fmt.Printf("cosoftd: torn tail (crash signature, recoverable): %s\n", rep.Detail)
	}
	return 0
}

// parseLogLevel maps the -log-level flag to a slog.Level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// publishExpvarOnce guards the process-global expvar name: metricsMux is
// called once per cosoftd process, but tests build several muxes and
// expvar.Publish panics on duplicates.
var publishExpvarOnce sync.Once

// traceDump is the JSON shape of /debug/trace.
type traceDump struct {
	Spans  []obs.Span                   `json:"spans"`
	Flight map[string][]obs.FlightEntry `json:"flight,omitempty"`
}

// metricsMux builds the observability mux: the JSON snapshot (or Prometheus
// exposition with ?format=prom), the group health plane, the causal trace
// dump, expvar, and the pprof profiles (registered explicitly; we serve a
// private mux, not http.DefaultServeMux). tr and fr may be nil, in which case
// /debug/trace reports empty collections; srv may be nil, in which case
// /debug/groups reports 503.
func metricsMux(metrics *obs.Registry, tr *obs.Tracer, fr *obs.FlightRecorder, srv *server.Server) *http.ServeMux {
	publishExpvarOnce.Do(func() {
		expvar.Publish("cosoft", expvar.Func(func() any { return metrics.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		prefix := r.URL.Query().Get("name")
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", obs.PromContentType)
			if err := metrics.WritePrometheus(w, prefix); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		snap := metrics.Snapshot()
		if prefix != "" {
			snap = filterSnapshot(snap, prefix)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/groups", func(w http.ResponseWriter, r *http.Request) {
		if srv == nil {
			http.Error(w, "no server attached", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(srv.Health()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		var spans []obs.Span
		if id := r.URL.Query().Get("trace"); id != "" {
			n, err := strconv.ParseUint(id, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex): "+err.Error(), http.StatusBadRequest)
				return
			}
			spans = tr.TraceSpans(obs.TraceID(n))
		} else {
			spans = tr.Spans()
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			if err := obs.WriteChromeTrace(w, spans); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		dump := traceDump{Spans: spans, Flight: fr.Snapshot()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// filterSnapshot keeps only metrics whose name starts with prefix.
func filterSnapshot(snap obs.Snapshot, prefix string) obs.Snapshot {
	out := obs.Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]obs.GaugeValue),
		Histograms: make(map[string]obs.Summary),
	}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) {
			out.Counters[name] = v
		}
	}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, prefix) {
			out.Gauges[name] = v
		}
	}
	for name, v := range snap.Histograms {
		if strings.HasPrefix(name, prefix) {
			out.Histograms[name] = v
		}
	}
	for name, v := range snap.Families {
		if strings.HasPrefix(name, prefix) {
			if out.Families == nil {
				out.Families = make(map[string]obs.FamilySnapshot)
			}
			out.Families[name] = v
		}
	}
	return out
}
