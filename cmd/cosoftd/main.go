// Command cosoftd runs the central coupling server: the controller of the
// COSOFT architecture that coordinates communication between application
// instances, holding the access permissions, registration records,
// historical UI states, and lock table.
//
// Usage:
//
//	cosoftd [-listen :7817] [-history 32] [-ordered-locking] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"cosoft/internal/server"
)

func main() {
	listen := flag.String("listen", ":7817", "TCP address to listen on")
	history := flag.Int("history", 0, "per-object historical-state depth (0 = default)")
	ordered := flag.Bool("ordered-locking", false, "use deterministic-order group locking instead of the paper's sequential algorithm")
	verbose := flag.Bool("v", false, "log registrations and departures")
	flag.Parse()

	opts := server.Options{
		HistoryDepth:   *history,
		OrderedLocking: *ordered,
	}
	if *verbose {
		logger := log.New(os.Stderr, "cosoftd: ", log.LstdFlags|log.Lmicroseconds)
		opts.Logf = logger.Printf
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosoftd: listen: %v\n", err)
		os.Exit(1)
	}
	srv := server.New(opts)
	fmt.Printf("cosoftd: coupling server listening on %s\n", lis.Addr())

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case sig := <-done:
		fmt.Printf("cosoftd: %v — shutting down\n", sig)
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosoftd: serve: %v\n", err)
		}
	}
	lis.Close()
	srv.Close()
	stats := srv.Stats()
	fmt.Printf("cosoftd: served %d events (%d lock denials), %d copies\n",
		stats.Events, stats.LockFailures, stats.Copies)
}
