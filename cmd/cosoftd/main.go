// Command cosoftd runs the central coupling server: the controller of the
// COSOFT architecture that coordinates communication between application
// instances, holding the access permissions, registration records,
// historical UI states, and lock table.
//
// With -metrics-addr set, an HTTP listener additionally serves the
// observability surface:
//
//	/metrics          JSON snapshot of every counter, gauge and histogram
//	/debug/vars       the same snapshot under expvar ("cosoft"), plus Go runtime vars
//	/debug/pprof/     the standard pprof profiles
//
// Usage:
//
//	cosoftd [-listen :7817] [-metrics-addr :9090] [-history 32] [-ordered-locking] [-v]
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"cosoft/internal/obs"
	"cosoft/internal/server"
)

func main() {
	listen := flag.String("listen", ":7817", "TCP address to listen on")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for the metrics/expvar/pprof endpoints (empty = disabled)")
	history := flag.Int("history", 0, "per-object historical-state depth (0 = default)")
	ordered := flag.Bool("ordered-locking", false, "use deterministic-order group locking instead of the paper's sequential algorithm")
	verbose := flag.Bool("v", false, "log registrations and departures")
	flag.Parse()

	metrics := obs.NewRegistry()
	opts := server.Options{
		HistoryDepth:   *history,
		OrderedLocking: *ordered,
		Metrics:        metrics,
	}
	if *verbose {
		logger := log.New(os.Stderr, "cosoftd: ", log.LstdFlags|log.Lmicroseconds)
		opts.Logf = logger.Printf
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosoftd: listen: %v\n", err)
		os.Exit(1)
	}
	srv := server.New(opts)
	fmt.Printf("cosoftd: coupling server listening on %s\n", lis.Addr())

	if *metricsAddr != "" {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosoftd: metrics listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("cosoftd: metrics on http://%s/metrics\n", mlis.Addr())
		go func() {
			if err := http.Serve(mlis, metricsMux(metrics)); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "cosoftd: metrics serve: %v\n", err)
			}
		}()
		defer mlis.Close()
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	select {
	case sig := <-done:
		fmt.Printf("cosoftd: %v — shutting down\n", sig)
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosoftd: serve: %v\n", err)
		}
	}
	lis.Close()
	srv.Close()
	// The state loop is gone after Close (Stats() reports zeros), but the
	// registry's atomics remain readable.
	snap := metrics.Snapshot()
	fmt.Printf("cosoftd: served %d events (%d lock denials), %d copies\n",
		snap.Counters["server.events"], snap.Counters["server.lock_failures"],
		snap.Counters["server.copies"])
	if rtt := snap.Histograms["server.event_rtt_ns"]; rtt.Count > 0 {
		fmt.Printf("cosoftd: event round trip p50=%.0fns p95=%.0fns p99=%.0fns max=%dns (outbox high water %d)\n",
			rtt.P50, rtt.P95, rtt.P99, rtt.Max,
			snap.Gauges["server.outbox_depth"].HighWater)
	}
}

// metricsMux builds the observability mux: the JSON snapshot, expvar, and
// the pprof profiles (registered explicitly; we serve a private mux, not
// http.DefaultServeMux).
func metricsMux(metrics *obs.Registry) *http.ServeMux {
	expvar.Publish("cosoft", expvar.Func(func() any { return metrics.Snapshot() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(metrics.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
