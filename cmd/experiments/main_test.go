package main

import "testing"

// TestRunnersQuick smoke-tests every experiment printer with reduced
// parameters, so `go test ./cmd/...` verifies the binary's code paths.
func TestRunnersQuick(t *testing.T) {
	runners := map[string]func(bool) error{
		"table1":        runTable1,
		"arch":          runArch,
		"statevsaction": runStateVsAction,
		"floorlock":     runFloorLock,
		"compat":        runCompat,
		"tori":          runTORI,
		"indirect":      runIndirect,
		"ordering":      runOrdering,
		"history":       runHistory,
		"locking":       runLocking,
	}
	for name, fn := range runners {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			if err := fn(true); err != nil {
				t.Fatal(err)
			}
		})
	}
}
