// Command experiments regenerates every table and figure of the paper's
// evaluation (the comparison table of §2.2, the architecture behaviour of
// Figures 1–3, and the quantified claims of §3–§4). See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	experiments [-e all|table1|arch|statevsaction|floorlock|compat|tori|indirect|ordering|history] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"cosoft/internal/experiments"
)

func main() {
	exp := flag.String("e", "all", "experiment to run (all, table1, arch, statevsaction, floorlock, compat, tori, indirect, ordering, history, locking)")
	quick := flag.Bool("quick", false, "use reduced parameter sweeps")
	flag.Parse()

	runners := []struct {
		name string
		fn   func(quick bool) error
	}{
		{"table1", runTable1},
		{"arch", runArch},
		{"statevsaction", runStateVsAction},
		{"floorlock", runFloorLock},
		{"compat", runCompat},
		{"tori", runTORI},
		{"indirect", runIndirect},
		{"ordering", runOrdering},
		{"history", runHistory},
		{"locking", runLocking},
	}
	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		if err := r.fn(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func header(title, artifact string) {
	fmt.Printf("=== %s\n    paper artifact: %s\n", title, artifact)
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func runTable1(bool) error {
	header("E1: comparison of application-independent synchronization approaches", "Table, §2.2")
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintf(w, "architecture\treference\t%s\n", strings.Join(experiments.CapabilityNames(), "\t"))
	for _, r := range rows {
		cells := make([]string, len(r.Capabilities))
		for i, c := range r.Capabilities {
			cells[i] = yn(c.Held)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.Architecture, r.Reference, strings.Join(cells, "\t"))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nprobe notes:")
	for _, r := range rows {
		for _, c := range r.Capabilities {
			fmt.Printf("  %-28s %-24s %s\n", r.Architecture, c.Name, c.Note)
		}
	}
	return nil
}

func runArch(quick bool) error {
	header("E2: architecture behaviour (latency & message cost)", "Figures 1-3, §2.1")
	p := experiments.DefaultArchParams()
	if quick {
		p = experiments.ArchParams{Users: []int{2, 4}, Latencies: []time.Duration{time.Millisecond},
			EventsPerUser: 8, SharedFraction: 0.25}
	}
	rows, err := experiments.ArchComparison(p)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "architecture\tusers\tnet latency\tresponse/event\tevents\tmessages")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%d\t%d\n",
			r.Architecture, r.Users, r.Latency, r.PerEvent.Round(time.Microsecond), r.Events, r.Messages)
	}
	return w.Flush()
}

func runStateVsAction(quick bool) error {
	header("E3: synchronization by state vs by action after decoupling", "§3.1")
	missed := []int{1, 10, 100, 1000}
	if quick {
		missed = []int{1, 10, 100}
	}
	rows, err := experiments.StateVsAction(missed)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "missed actions\treplay\treplay msgs\tcompacted\tcompacted msgs\tsurviving events\tstate copy\tcopy msgs")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%d\t%v\t%d\t%d\t%v\t%d\n",
			r.MissedActions,
			r.ReplayTime.Round(time.Microsecond), r.ReplayMsgs,
			r.CompactTime.Round(time.Microsecond), r.CompactMsgs, r.CompactEvents,
			r.StateCopyTime.Round(time.Microsecond), r.StateCopyMsgs)
	}
	return w.Flush()
}

func runFloorLock(quick bool) error {
	header("E4: floor-control cost vs event granularity", "§3.2")
	textLen := 2048
	grans := []int{1, 4, 16, 64, 256}
	if quick {
		textLen = 512
		grans = []int{1, 16, 256}
	}
	rows, err := experiments.FloorControl(textLen, grans)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "chars/event\tevents\ttotal\tper char\tmessages\trejections\tlocal only\toverhead share")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%d\t%d\t%v\t%.1f%%\n",
			r.CharsPerEvent, r.Events,
			r.TotalTime.Round(time.Microsecond), r.PerChar.Round(time.Nanosecond),
			r.Messages, r.Rejections,
			r.UncoupledTime.Round(time.Microsecond), 100*r.OverheadShare)
	}
	return w.Flush()
}

func runCompat(quick bool) error {
	header("E5: s-compatibility mapping search cost", "§3.3")
	fanouts := []int{2, 4, 6, 8}
	depths := []int{2, 4}
	if quick {
		fanouts = []int{2, 5}
		depths = []int{2}
	}
	rows, err := experiments.CompatMatching(fanouts, depths)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "fanout\tdepth\tnodes\tnaive visits\tnaive time\tnaive ok\theuristic visits\theuristic time")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\t%v\t%d\t%v\n",
			r.Fanout, r.Depth, r.Nodes,
			r.NaiveVisits, r.NaiveTime.Round(time.Microsecond), yn(r.NaiveOK),
			r.HeurVisits, r.HeurTime.Round(time.Microsecond))
	}
	return w.Flush()
}

func runTORI(quick bool) error {
	header("E6: TORI — multiple query evaluation vs evaluate-once-and-share", "§4")
	sizes := []int{100, 1000, 10000, 100000}
	if quick {
		sizes = []int{100, 10000}
	}
	rows, err := experiments.TORIQueryCoupling(sizes, 4)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "db rows\tusers\tre-execute (N evals)\tshare (1 eval + N-1 xfers)\tresult bytes\tdivergent query ok")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%d\t%v\n",
			r.DBRows, r.Users,
			r.ReexecTime.Round(time.Microsecond), r.ShareTime.Round(time.Microsecond),
			r.ResultBytes, yn(r.DivergentOK))
	}
	return w.Flush()
}

func runIndirect(quick bool) error {
	header("E7: indirect coupling of dependent objects", "§4 (COSOFT lessons)")
	points := []int{64, 512, 4096, 32768}
	if quick {
		points = []int{64, 4096}
	}
	rows, err := experiments.IndirectCoupling(points)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "display points\tdirect time\tdirect bytes\tindirect time\tindirect bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%d\t%v\t%d\n",
			r.DisplayPoints,
			r.DirectTime.Round(time.Microsecond), r.DirectBytes,
			r.IndirectTime.Round(time.Microsecond), r.IndirectBytes)
	}
	return w.Flush()
}

func runOrdering(quick bool) error {
	header("E8: centralized control vs timestamp ordering", "§2.1")
	users, ops := 4, 50
	shares := []float64{0, 0.25, 0.5, 1}
	if quick {
		users, ops = 3, 20
		shares = []float64{0, 1}
	}
	rows, err := experiments.OrderingComparison(users, ops, shares)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "hot share\tcentral time\tcentral rejected\tcentral done\toptimistic time\tconflicts\tundos")
	for _, r := range rows {
		fmt.Fprintf(w, "%.0f%%\t%v\t%d\t%d\t%v\t%d\t%d\n",
			100*r.HotShare,
			r.CentralTime.Round(time.Microsecond), r.CentralRejected, r.CentralCompleted,
			r.OptimisticTime.Round(time.Microsecond), r.Conflicts, r.Undos)
	}
	return w.Flush()
}

func runHistory(quick bool) error {
	header("E9: historical UI states (undo/redo)", "§2.1, §3.1")
	depths := []int{1, 4, 16, 32}
	if quick {
		depths = []int{1, 8}
	}
	rows, err := experiments.HistoryWalk(depths)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "depth\trecord\tundo all\tredo all\tundo correct\tredo correct")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%v\t%v\n",
			r.Depth,
			r.RecordTime.Round(time.Microsecond),
			r.UndoAllTime.Round(time.Microsecond),
			r.RedoAllTime.Round(time.Microsecond),
			yn(r.UndoCorrect), yn(r.RedoCorrect))
	}
	return w.Flush()
}

func runLocking(quick bool) error {
	header("E10: group-locking variants under contention", "ablation (DESIGN.md decision 2)")
	users, ops := 4, 25
	if quick {
		users, ops = 3, 10
	}
	rows, err := experiments.LockingComparison(users, ops)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "variant\tusers\tops/user\ttotal\tlock denials")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%d\n",
			r.Variant, r.Users, r.OpsPerUser, r.Total.Round(time.Microsecond), r.Denials)
	}
	return w.Flush()
}
