// Command cosoft-repl is the interactive control interface: it connects one
// application instance to a running cosoftd server and drives it from stdin
// — building widgets, declaring them couplable, inspecting the classroom,
// coupling, dispatching events, copying state, and walking the undo history.
// Type `help` for the command list.
//
// Usage:
//
//	cosoft-repl -server localhost:7817 -app pad -user alice [-spec 'textfield note value=""']
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cosoft"
	"cosoft/internal/client"
	"cosoft/internal/repl"
)

func main() {
	server := flag.String("server", "localhost:7817", "coupling server address")
	app := flag.String("app", "repl", "application type for the registration record")
	user := flag.String("user", os.Getenv("USER"), "user name for the registration record")
	host := flag.String("host", hostname(), "host name for the registration record")
	spec := flag.String("spec", "", "optional widget spec to build and declare on startup")
	flag.Parse()

	reg := cosoft.NewRegistry()
	if *spec != "" {
		if _, err := cosoft.Build(reg, "/", *spec); err != nil {
			fmt.Fprintf(os.Stderr, "cosoft-repl: spec: %v\n", err)
			os.Exit(1)
		}
	}
	cli, err := cosoft.Dial(*server, cosoft.ClientOptions{
		AppType: *app, User: *user, Host: *host, Registry: reg,
		RPCTimeout: 10 * time.Second,
		OnStateApplied: func(path string, origin cosoft.InstanceID) {
			fmt.Printf("<< state applied to %s by %s\n", path, origin)
		},
		OnRemoteEvent: func(e *cosoft.Event) {
			fmt.Printf("<< remote %s\n", e)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosoft-repl: %v\n", err)
		os.Exit(1)
	}
	defer cli.Close()
	if *spec != "" {
		if err := declareTop(cli, reg); err != nil {
			fmt.Fprintf(os.Stderr, "cosoft-repl: declare: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("connected to %s as %s (type 'help')\n", *server, cli.ID())
	if err := repl.New(cli, os.Stdout).Run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "cosoft-repl: %v\n", err)
		os.Exit(1)
	}
}

// declareTop declares every top-level widget built from -spec.
func declareTop(cli *client.Client, reg *cosoft.Registry) error {
	for _, w := range reg.Root().Children() {
		if err := cli.DeclareTree(w.Path()); err != nil {
			return err
		}
	}
	return nil
}

func hostname() string {
	if h, err := os.Hostname(); err == nil {
		return h
	}
	return "unknown"
}
