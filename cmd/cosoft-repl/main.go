// Command cosoft-repl is the interactive control interface: it connects one
// application instance to a running cosoftd server and drives it from stdin
// — building widgets, declaring them couplable, inspecting the classroom,
// coupling, dispatching events, copying state, and walking the undo history.
// Type `help` for the command list.
//
// Usage:
//
//	cosoft-repl -server localhost:7817 -app pad -user alice [-spec 'textfield note value=""']
//	            [-metrics-url http://localhost:9090]
//
// With -metrics-url pointing at cosoftd's -metrics-addr listener, the
// `trace` command fetches and pretty-prints the server's recent causal
// spans and flight-recorder entries, and the `groups` command renders
// per-coupling-group health with straggler attribution.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"cosoft"
	"cosoft/internal/client"
	"cosoft/internal/repl"
)

func main() {
	server := flag.String("server", "localhost:7817", "coupling server address")
	app := flag.String("app", "repl", "application type for the registration record")
	user := flag.String("user", os.Getenv("USER"), "user name for the registration record")
	host := flag.String("host", hostname(), "host name for the registration record")
	spec := flag.String("spec", "", "optional widget spec to build and declare on startup")
	metricsURL := flag.String("metrics-url", "", "cosoftd observability endpoint for the trace and groups commands, e.g. http://localhost:9090 (empty = disabled)")
	logLevel := flag.String("log-level", "", "structured log level: debug, info, warn or error (empty = logging disabled)")
	flag.Parse()

	var logger *slog.Logger
	if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintf(os.Stderr, "cosoft-repl: -log-level: %v\n", err)
			os.Exit(2)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}

	reg := cosoft.NewRegistry()
	if *spec != "" {
		if _, err := cosoft.Build(reg, "/", *spec); err != nil {
			fmt.Fprintf(os.Stderr, "cosoft-repl: spec: %v\n", err)
			os.Exit(1)
		}
	}
	cli, err := cosoft.Dial(*server, cosoft.ClientOptions{
		AppType: *app, User: *user, Host: *host, Registry: reg,
		RPCTimeout: 10 * time.Second, Logger: logger,
		OnStateApplied: func(path string, origin cosoft.InstanceID) {
			fmt.Printf("<< state applied to %s by %s\n", path, origin)
		},
		OnRemoteEvent: func(e *cosoft.Event) {
			fmt.Printf("<< remote %s\n", e)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosoft-repl: %v\n", err)
		os.Exit(1)
	}
	defer cli.Close()
	if *spec != "" {
		if err := declareTop(cli, reg); err != nil {
			fmt.Fprintf(os.Stderr, "cosoft-repl: declare: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("connected to %s as %s (type 'help')\n", *server, cli.ID())
	r := repl.New(cli, os.Stdout)
	r.SetMetricsBase(*metricsURL)
	if err := r.Run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "cosoft-repl: %v\n", err)
		os.Exit(1)
	}
}

// declareTop declares every top-level widget built from -spec.
func declareTop(cli *client.Client, reg *cosoft.Registry) error {
	for _, w := range reg.Root().Children() {
		if err := cli.DeclareTree(w.Path()); err != nil {
			return err
		}
	}
	return nil
}

func hostname() string {
	if h, err := os.Hostname(); err == nil {
		return h
	}
	return "unknown"
}
