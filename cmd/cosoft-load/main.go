// Command cosoft-load drives the coupling server with real TCP clients at
// configurable scale: G independent coupling groups of S members each, every
// member a full client over its own loopback connection, with one origin per
// group dispatching synchronized events as fast as the group's floor control
// allows (or at a fixed rate). It is the measurement harness for the
// 256–4096-member regime the broadcast fan-out optimizations target.
//
// By default it starts an in-process server on a loopback listener, so the
// emitted row includes the server's own metrics (event RTT histogram,
// server.bytes_encoded, body-pool hit rates) and whole-process B/event and
// allocs/event. With -addr it drives an external server instead and reports
// only client-observed numbers. A faultnet profile (in-process only)
// degrades every server-side connection to measure under loss, duplication
// and delay.
//
// Usage:
//
//	cosoft-load [-groups 2] [-group-size 64] [-duration 5s] [-events 0]
//	            [-rate 0] [-payload 24] [-batch-limit 32] [-batching]
//	            [-shards 1] [-no-encode-once] [-no-member-attr]
//	            [-faultnet "dup=0.01,delay=1ms,jitter=1ms"]
//	            [-addr host:port] [-bench-out BENCH_obs.json] [-v]
//
// The summary row reports per-group-aggregated p50/p99 dispatch RTT (origin
// Event → server EventResult, the floor-acquisition latency every user
// feels), events/sec, and — in-process — B/event, allocs/event and
// bytes-encoded/event. With -bench-out the same numbers are appended to the
// BENCH_obs.json trajectory next to the go-test benchmark rows.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/benchio"
	"cosoft/internal/client"
	"cosoft/internal/experiments"
	"cosoft/internal/faultnet"
	"cosoft/internal/obs"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

func main() {
	var (
		addr         = flag.String("addr", "", "drive an external server at this address (empty = start an in-process server)")
		groups       = flag.Int("groups", 2, "number of independent coupling groups")
		groupSize    = flag.Int("group-size", 64, "members per group (origin included); every member is one TCP client")
		duration     = flag.Duration("duration", 5*time.Second, "how long to generate load (ignored when -events > 0)")
		events       = flag.Int("events", 0, "dispatch exactly this many events per group instead of running for -duration")
		rate         = flag.Float64("rate", 0, "target events/sec per group (0 = as fast as floor control allows)")
		payload      = flag.Int("payload", 24, "event payload size in bytes")
		batchLimit   = flag.Int("batch-limit", 32, "in-process server batch limit (0 or 1 = batching disabled)")
		batching     = flag.Bool("batching", true, "clients opt into the wire batch extension")
		shards       = flag.Int("shards", 1, "in-process server shard count: per-coupling-group state loops (1 = classic single loop)")
		noEncodeOnce = flag.Bool("no-encode-once", false, "in-process server re-encodes the Exec body per member (ablation)")
		noMemberAttr = flag.Bool("no-member-attr", false, "in-process server skips per-member straggler attribution (ablation)")
		faultSpec    = flag.String("faultnet", "", `faultnet profile for in-process server conns, e.g. "drop=0.01,dup=0.01,dropnth=0,delay=1ms,jitter=1ms,seed=1"`)
		benchOut     = flag.String("bench-out", "", "append a row to this BENCH_obs.json trajectory (empty = report only)")
		verbose      = flag.Bool("v", false, "log per-group progress")
	)
	flag.Parse()
	if *groups < 1 || *groupSize < 2 {
		fmt.Fprintln(os.Stderr, "cosoft-load: need -groups >= 1 and -group-size >= 2")
		os.Exit(2)
	}
	if err := run(config{
		addr: *addr, groups: *groups, groupSize: *groupSize,
		duration: *duration, events: *events, rate: *rate, payload: *payload,
		batchLimit: *batchLimit, batching: *batching, shards: *shards,
		noEncodeOnce: *noEncodeOnce, noMemberAttr: *noMemberAttr,
		faultSpec: *faultSpec, benchOut: *benchOut, verbose: *verbose,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "cosoft-load: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	addr         string
	groups       int
	groupSize    int
	duration     time.Duration
	events       int
	rate         float64
	payload      int
	batchLimit   int
	batching     bool
	shards       int
	noEncodeOnce bool
	noMemberAttr bool
	faultSpec    string
	benchOut     string
	verbose      bool
}

// groupResult is one group's share of the load: accepted events, floor
// rejections retried through, and the dispatch RTT samples.
type groupResult struct {
	events     int
	rejections int
	rtts       []time.Duration
}

func run(cfg config) error {
	var (
		srv  *server.Server
		reg  *obs.Registry
		wg   sync.WaitGroup
		dial func() (net.Conn, error)
	)
	if cfg.addr == "" {
		sched, err := parseFaultSpec(cfg.faultSpec)
		if err != nil {
			return err
		}
		reg = obs.NewRegistry()
		srv = server.New(server.Options{
			BatchLimit:               cfg.batchLimit,
			Shards:                   cfg.shards,
			DisableEncodeOnce:        cfg.noEncodeOnce,
			DisableMemberAttribution: cfg.noMemberAttr,
			Metrics:                  reg,
		})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer lis.Close()
		// Accept by hand rather than via srv.Serve so every server-side
		// connection can be wrapped in the fault injector.
		go func() {
			for {
				conn, err := lis.Accept()
				if err != nil {
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					srv.HandleConn(wire.NewConn(faultnet.Wrap(conn, sched)))
				}()
			}
		}()
		dial = func() (net.Conn, error) { return net.Dial("tcp", lis.Addr().String()) }
		defer func() {
			srv.Close()
			wg.Wait()
		}()
	} else {
		if cfg.faultSpec != "" {
			return fmt.Errorf("-faultnet requires the in-process server (drop -addr)")
		}
		dial = func() (net.Conn, error) { return net.Dial("tcp", cfg.addr) }
	}

	// Build the topology: per group, member 0 is the origin owning /hub and
	// every other member couples its own /hub to it, so one event fans out
	// to groupSize-1 connections.
	start := time.Now()
	origins := make([]*client.Client, cfg.groups)
	var all []*client.Client
	defer func() {
		for _, c := range all {
			c.Close()
		}
	}()
	for g := 0; g < cfg.groups; g++ {
		for m := 0; m < cfg.groupSize; m++ {
			conn, err := dial()
			if err != nil {
				return fmt.Errorf("dial group %d member %d: %w", g, m, err)
			}
			wreg := widget.NewRegistry()
			widget.MustBuild(wreg, "/", `textfield hub value=""`)
			cl, err := client.New(conn, client.Options{
				AppType: "load", Host: "load",
				User:       fmt.Sprintf("g%dm%d", g, m),
				Registry:   wreg,
				RPCTimeout: 30 * time.Second,
				Batching:   cfg.batching,
			})
			if err != nil {
				return fmt.Errorf("handshake group %d member %d: %w", g, m, err)
			}
			all = append(all, cl)
			if err := cl.Declare("/hub"); err != nil {
				return err
			}
			if m == 0 {
				origins[g] = cl
			} else if err := origins[g].Couple("/hub", cl.Ref("/hub")); err != nil {
				return err
			}
		}
		if cfg.verbose {
			fmt.Printf("cosoft-load: group %d ready (%d members)\n", g, cfg.groupSize)
		}
	}
	setupTime := time.Since(start)

	// Generate: one driver goroutine per group origin.
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	results := make([]groupResult, cfg.groups)
	deadline := time.Now().Add(cfg.duration)
	loadStart := time.Now()
	var drivers sync.WaitGroup
	errc := make(chan error, cfg.groups)
	for g := 0; g < cfg.groups; g++ {
		drivers.Add(1)
		go func(g int) {
			defer drivers.Done()
			payload := attr.String(strings.Repeat("x", cfg.payload))
			var interval time.Duration
			if cfg.rate > 0 {
				interval = time.Duration(float64(time.Second) / cfg.rate)
			}
			next := time.Now()
			res := &results[g]
			for {
				if cfg.events > 0 {
					if res.events >= cfg.events {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				ev := &widget.Event{Path: "/hub", Name: widget.EventChanged, Args: []attr.Value{payload}}
				t0 := time.Now()
				rej, err := experiments.DispatchRetry(origins[g], ev)
				if err != nil {
					errc <- fmt.Errorf("group %d dispatch: %w", g, err)
					return
				}
				res.rtts = append(res.rtts, time.Since(t0))
				res.events++
				res.rejections += rej
			}
		}(g)
	}
	drivers.Wait()
	loadTime := time.Since(loadStart)
	select {
	case err := <-errc:
		return err
	default:
	}

	// Drain: wait for every pending event to resolve so the stats row
	// covers complete round trips, then check the shared-body leak oracle.
	if srv != nil {
		quiet := time.Now().Add(10 * time.Second)
		for time.Now().Before(quiet) {
			if srv.Stats().PendingEvents == 0 && wire.LiveSharedBodies() == 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if n := wire.LiveSharedBodies(); n != 0 {
			return fmt.Errorf("leak check: %d shared bodies still referenced at quiescence", n)
		}
	}
	runtime.ReadMemStats(&ms1)

	// Aggregate.
	var total groupResult
	var rtts []time.Duration
	for _, r := range results {
		total.events += r.events
		total.rejections += r.rejections
		rtts = append(rtts, r.rtts...)
	}
	if total.events == 0 {
		return fmt.Errorf("no events were dispatched (duration too short?)")
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	quantile := func(q float64) time.Duration {
		if len(rtts) == 0 {
			return 0
		}
		i := int(q * float64(len(rtts)-1))
		return rtts[i]
	}
	p50, p99 := quantile(0.50), quantile(0.99)
	eps := float64(total.events) / loadTime.Seconds()
	bPerEvent := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(total.events)
	allocsPerEvent := float64(ms1.Mallocs-ms0.Mallocs) / float64(total.events)

	name := fmt.Sprintf("cosoft-load/g%dx%d", cfg.groups, cfg.groupSize)
	fmt.Printf("%s: %d events in %.2fs (%.0f events/sec, %d floor rejections, setup %.2fs)\n",
		name, total.events, loadTime.Seconds(), eps, total.rejections, setupTime.Seconds())
	fmt.Printf("%s: dispatch RTT p50=%s p99=%s max=%s\n", name, p50, p99, quantile(1))
	extra := map[string]float64{
		"groups":         float64(cfg.groups),
		"group_size":     float64(cfg.groupSize),
		"events":         float64(total.events),
		"events_per_sec": eps,
		"p50_rtt_ns":     float64(p50.Nanoseconds()),
		"p99_rtt_ns":     float64(p99.Nanoseconds()),
		"shards":         float64(cfg.shards),
		"num_cpu":        float64(runtime.NumCPU()),
	}
	var stats server.Stats
	if srv != nil {
		stats = srv.Stats()
		fmt.Printf("%s: B/event=%.0f allocs/event=%.1f bytes-encoded/event=%.0f pool hit/miss=%d/%d\n",
			name, bPerEvent, allocsPerEvent,
			float64(stats.BytesEncoded)/float64(total.events),
			stats.BodyPoolHits, stats.BodyPoolMisses)
		extra["b_per_event"] = bPerEvent
		extra["allocs_per_event"] = allocsPerEvent
		extra["bytes_encoded"] = float64(stats.BytesEncoded)
		extra["bytes_enc_per_event"] = float64(stats.BytesEncoded) / float64(total.events)
		extra["body_pool_hits"] = float64(stats.BodyPoolHits)
		extra["body_pool_misses"] = float64(stats.BodyPoolMisses)
	}
	if cfg.benchOut == "" {
		return nil
	}
	row := struct {
		Bench    string             `json:"bench"`
		N        int                `json:"n"`
		EventRTT obs.Summary        `json:"event_rtt_ns"`
		Snapshot obs.Snapshot       `json:"snapshot"`
		Extra    map[string]float64 `json:"extra"`
	}{Bench: name, N: total.events, EventRTT: stats.EventRTT, Extra: extra}
	if reg != nil {
		row.Snapshot = reg.Snapshot()
	}
	return benchio.AppendRow(cfg.benchOut, row, "")
}

// parseFaultSpec parses the -faultnet profile: comma-separated key=value
// pairs matching faultnet.Schedule fields (drop, dup, dropnth, delay,
// jitter, seed). Empty means no injected faults.
func parseFaultSpec(s string) (faultnet.Schedule, error) {
	var sched faultnet.Schedule
	if s == "" {
		return sched, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return sched, fmt.Errorf("faultnet: want key=value, got %q", kv)
		}
		var err error
		switch k {
		case "drop":
			sched.DropProb, err = strconv.ParseFloat(v, 64)
		case "dup":
			sched.DupProb, err = strconv.ParseFloat(v, 64)
		case "dropnth":
			sched.DropEveryNth, err = strconv.Atoi(v)
		case "delay":
			sched.Delay, err = time.ParseDuration(v)
		case "jitter":
			sched.Jitter, err = time.ParseDuration(v)
		case "seed":
			sched.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return sched, fmt.Errorf("faultnet: unknown key %q (want drop, dup, dropnth, delay, jitter or seed)", k)
		}
		if err != nil {
			return sched, fmt.Errorf("faultnet: bad %s: %w", k, err)
		}
	}
	return sched, nil
}
