// Whiteboard: a shared drawing surface with dynamic population — users join
// and leave the coupling group at runtime, and a latecomer is brought up to
// date with one synchronization by state before events take over.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"cosoft"
)

func main() {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	srv := cosoft.NewServer(cosoft.ServerOptions{})
	defer srv.Close()
	go srv.Serve(lis) //nolint:errcheck

	newBoard := func(user string) *cosoft.Client {
		reg := cosoft.NewRegistry()
		cosoft.MustBuild(reg, "/", `canvas board width=800 height=600`)
		cli, err := cosoft.Dial(lis.Addr().String(), cosoft.ClientOptions{
			AppType: "whiteboard", User: user, Host: "local", Registry: reg,
			RPCTimeout: 5 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.Declare("/board"); err != nil {
			log.Fatal(err)
		}
		return cli
	}

	// draw retries while the floor-control lock denies the stroke — the
	// same thing a user does when the widget re-enables.
	draw := func(c *cosoft.Client, pts ...cosoft.Value) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			err := c.DispatchChecked(&cosoft.Event{
				Path: "/board", Name: cosoft.EventDraw, Args: pts,
			})
			if err == nil {
				return
			}
			if time.Now().After(deadline) {
				log.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	strokes := func(c *cosoft.Client) int {
		w, err := c.Registry().Lookup("/board")
		if err != nil {
			log.Fatal(err)
		}
		return len(w.Attr("strokes").AsPointList())
	}
	// Two users start a session.
	ann := newBoard("ann")
	defer ann.Close()
	ben := newBoard("ben")
	defer ben.Close()
	must(ann.Couple("/board", ben.Ref("/board")))
	waitFor(func() bool { return ben.Coupled("/board") })

	draw(ann, cosoft.PointList(pt(10, 10), pt(60, 60), pt(110, 10)))
	draw(ben, cosoft.PointList(pt(10, 100), pt(110, 100)))
	waitFor(func() bool { return strokes(ann) == 5 && strokes(ben) == 5 })
	fmt.Printf("ann and ben drew together: %d points each\n", strokes(ann))

	// A latecomer joins: one state copy brings the canvas up to date, then
	// coupling keeps it synchronized (the paper's initial synchronization
	// by UI state followed by synchronization by action).
	cay := newBoard("cay")
	defer cay.Close()
	must(cay.CopyFrom(ann.Ref("/board"), "/board", false))
	waitFor(func() bool { return strokes(cay) == 5 })
	must(cay.Couple("/board", ann.Ref("/board")))
	waitFor(func() bool { return len(cay.CO("/board")) == 2 })
	fmt.Printf("cay joined late, caught up by state copy (%d points), now coupled to %d peers\n",
		strokes(cay), len(cay.CO("/board")))

	draw(cay, cosoft.PointList(pt(60, 150)))
	waitFor(func() bool { return strokes(ann) == 6 && strokes(ben) == 6 && strokes(cay) == 6 })
	fmt.Println("cay's stroke reached everyone")

	// Ben leaves the session; his board survives with the drawing so far.
	ben.Close()
	waitFor(func() bool { return len(ann.CO("/board")) == 1 })
	draw(ann, cosoft.PointList(pt(200, 200)))
	waitFor(func() bool { return strokes(ann) == 7 && strokes(cay) == 7 })
	fmt.Printf("ben left (auto-decoupled); ann and cay continue at %d points\n", strokes(ann))

	stats := srv.Stats()
	fmt.Printf("server: %d events, %d execs, %d links live\n",
		stats.Events, stats.ExecsSent, stats.Links)
}

func pt(x, y int32) cosoft.Point { return cosoft.Point{X: x, Y: y} }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("timed out")
}
