// Classroom: the COSOFT scenario (§4) as a library example — a teacher on
// the electronic blackboard, students on workstations, request/demon
// messages, remote coupling, and indirect coupling of the function display.
// For the fuller guided transcript see cmd/cosoft-demo.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"cosoft"
	"cosoft/internal/classroom"
	"cosoft/internal/client"
	"cosoft/internal/widget"
)

func main() {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	srv := cosoft.NewServer(cosoft.ServerOptions{})
	defer srv.Close()
	go srv.Serve(lis) //nolint:errcheck

	dial := func() net.Conn {
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		return conn
	}

	teacher := classroom.NewTeacher()
	if err := teacher.Attach(dial(), "teacher", client.Options{RPCTimeout: 5 * time.Second}); err != nil {
		log.Fatal(err)
	}
	defer teacher.Detach()

	student := classroom.NewStudent("sketch the parabola x^2 and mark its vertex")
	if err := student.Attach(dial(), "mia", client.Options{RPCTimeout: 5 * time.Second}); err != nil {
		log.Fatal(err)
	}
	defer student.Detach()

	// The student struggles; the demon notices the question mark and the
	// student raises a hand too.
	must(student.SetAnswer("vertex at 0? not sure"))
	must(student.RaiseHand("could you show the graph on the board?"))
	waitFor(func() bool { return len(teacher.Inbox()) >= 2 })
	fmt.Println("teacher's inbox:")
	for _, m := range teacher.Inbox() {
		tag := "request"
		if m.Auto {
			tag = "demon "
		}
		fmt.Printf("  [%s] %s: %s\n", tag, m.From, m.Text)
	}

	// The teacher couples with the student and demonstrates on the board.
	must(teacher.JoinSession(student.Client().ID(), classroom.DefaultPairs()))
	must(teacher.SetTerm("x^2"))
	waitFor(func() bool {
		w, err := student.Registry().Lookup("/desk/term")
		return err == nil && w.Attr(widget.AttrValue).AsString() == "x^2"
	})
	disp, err := student.Registry().Lookup("/desk/display")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nteacher wrote x^2 on the board; the student's display regenerated locally (%d points)\n",
		len(disp.Attr(widget.AttrStrokes).AsPointList()))

	// The student completes the answer publicly (it mirrors to the board's
	// notes field).
	must(student.SetAnswer("vertex at (0,0), opens upward"))
	waitFor(func() bool {
		w, err := teacher.Registry().Lookup("/board/notes")
		return err == nil && w.Attr(widget.AttrValue).AsString() == "vertex at (0,0), opens upward"
	})
	fmt.Println("the corrected answer appears in the board's notes for the whole class")

	must(teacher.EndSession(student.Client().ID(), classroom.DefaultPairs()))
	fmt.Println("session ended; both environments keep the discussed state")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("timed out")
}
