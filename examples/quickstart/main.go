// Quickstart: two single-user editor instances become multi-user by
// attaching clients to the coupling server and coupling one text field.
// Everything runs in one process over TCP so the example is self-contained.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"cosoft"
)

func main() {
	// 1. Start the central coupling server.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	srv := cosoft.NewServer(cosoft.ServerOptions{})
	defer srv.Close()
	go srv.Serve(lis) //nolint:errcheck

	// 2. Build two ordinary single-user applications: a widget tree each.
	newEditor := func(user string) *cosoft.Client {
		reg := cosoft.NewRegistry()
		cosoft.MustBuild(reg, "/", `form editor title="Notes"
  textfield note value=""
  label status label="ready"`)
		// 3. The one statement that makes the application cooperative.
		cli, err := cosoft.Dial(lis.Addr().String(), cosoft.ClientOptions{
			AppType: "editor", User: user, Host: "local", Registry: reg,
			RPCTimeout: 5 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.DeclareTree("/editor"); err != nil {
			log.Fatal(err)
		}
		return cli
	}
	alice := newEditor("alice")
	defer alice.Close()
	bob := newEditor("bob")
	defer bob.Close()

	// 4. Couple the two note fields (partial coupling: the status labels
	//    stay private).
	if err := alice.Couple("/editor/note", bob.Ref("/editor/note")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coupled %s with %s\n", alice.Ref("/editor/note"), bob.Ref("/editor/note"))

	// 5. Alice types; the high-level 'changed' event re-executes at Bob's.
	if err := alice.Registry().Dispatch(&cosoft.Event{
		Path: "/editor/note", Name: cosoft.EventChanged,
		Args: []cosoft.Value{cosoft.String("shared meeting notes")},
	}); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return lookup(bob, "/editor/note", "value") == "shared meeting notes" })
	fmt.Printf("bob sees:   %q\n", lookup(bob, "/editor/note", "value"))

	// 6. Decoupling keeps both objects alive with their last state.
	if err := alice.Decouple("/editor/note", bob.Ref("/editor/note")); err != nil {
		log.Fatal(err)
	}
	if err := alice.Registry().Dispatch(&cosoft.Event{
		Path: "/editor/note", Name: cosoft.EventChanged,
		Args: []cosoft.Value{cosoft.String("alice's private edits")},
	}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	fmt.Printf("after decoupling — alice: %q, bob: %q\n",
		lookup(alice, "/editor/note", "value"), lookup(bob, "/editor/note", "value"))

	// 7. Periodic re-synchronization by state: bob pulls alice's current
	//    state once, without re-coupling.
	if err := bob.CopyFrom(alice.Ref("/editor/note"), "/editor/note", false); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return lookup(bob, "/editor/note", "value") == "alice's private edits" })
	fmt.Printf("after CopyFrom — bob: %q\n", lookup(bob, "/editor/note", "value"))

	stats := srv.Stats()
	fmt.Printf("server: %d events, %d copies\n", stats.Events, stats.Copies)
}

func lookup(c *cosoft.Client, path, attrName string) string {
	w, err := c.Registry().Lookup(path)
	if err != nil {
		log.Fatal(err)
	}
	return w.Attr(attrName).AsString()
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("timed out waiting for replication")
}
