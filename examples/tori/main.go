// Cooperative TORI: the paper's second application (§4). Two researchers run
// TORI retrieval interfaces against their *own* databases; their query forms
// are coupled so both see the same query, but each invocation re-executes
// against each participant's database — "queries can be sent to different
// databases".
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"cosoft"
	"cosoft/internal/client"
	"cosoft/internal/db"
	"cosoft/internal/tori"
)

func main() {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	srv := cosoft.NewServer(cosoft.ServerOptions{})
	defer srv.Close()
	go srv.Serve(lis) //nolint:errcheck

	// Two TORI instances with different bibliographies (different seeds).
	newTORI := func(user string, seed int64) (*tori.App, *client.Client) {
		database, err := tori.Bibliography(2000, seed)
		if err != nil {
			log.Fatal(err)
		}
		app, err := tori.New(database, tori.BibliographyDesc())
		if err != nil {
			log.Fatal(err)
		}
		conn, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		cli, err := client.New(conn, client.Options{
			AppType: "tori", User: user, Host: "local", Registry: app.Registry(),
			RPCTimeout: 5 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.DeclareTree(tori.QueryPath); err != nil {
			log.Fatal(err)
		}
		return app, cli
	}
	appA, cliA := newTORI("researcher-a", 1)
	defer cliA.Close()
	appB, cliB := newTORI("researcher-b", 2)
	defer cliB.Close()

	// Couple the query forms as complex objects: the s-compatibility
	// mapping pairs every component, and the initial push aligns states.
	links, err := cliA.CoupleTree(tori.QueryPath, cliB.Ref(tori.QueryPath), client.SyncPush)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coupled query forms with %d component links\n", links)

	// Researcher A fills the query; the form replicates to B.
	must(appA.SetField("author", "lamport"))
	must(appA.SetOp("author", db.OpEq))
	waitFor(func() bool { return appB.Field("author") == "lamport" })
	fmt.Printf("B's form mirrors the query: author = %q\n", appB.Field("author"))

	// A invokes the query: the 'activate' event re-executes at B, so BOTH
	// databases are searched — multiple evaluation.
	must(appA.Submit())
	waitFor(func() bool { return appB.QueriesRun() == 1 })
	fmt.Printf("A found %d rows in its database; B found %d rows in its own\n",
		len(appA.ResultRows()), len(appB.ResultRows()))
	if len(appA.ResultRows()) > 0 {
		fmt.Printf("A's first hit: %s\n", appA.ResultRows()[0])
	}
	if len(appB.ResultRows()) > 0 {
		fmt.Printf("B's first hit: %s\n", appB.ResultRows()[0])
	}

	// B refines the query; the refinement replicates and the re-invocation
	// evaluates in both environments again. Coupled actions can be denied
	// while the previous event still holds the floor, so the helper retries.
	retry(func() error { return appB.SetField("journal", "CSCW") },
		func() bool { return appA.Field("journal") == "CSCW" })
	retry(func() error { return appB.Submit() },
		func() bool { return appA.QueriesRun() == 2 && appB.QueriesRun() == 2 })
	fmt.Printf("after B's refinement: A %d rows, B %d rows (each against its own data)\n",
		len(appA.ResultRows()), len(appB.ResultRows()))

	// Result interaction: B picks a hit and instantiates a new query.
	if rows := appB.ResultRows(); len(rows) > 0 {
		must(appB.SelectResult(rows[0]))
		must(appB.NewQueryFromSelection())
		fmt.Printf("B instantiated a new query from its selection: author=%q title=%q\n",
			appB.Field("author"), appB.Field("title"))
	}

	fmt.Printf("evaluations — A: %d, B: %d (every coupled Submit ran in both environments)\n",
		appA.QueriesRun(), appB.QueriesRun())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// retry performs a coupled action until its observable effect holds,
// re-dispatching when floor control denied the action.
func retry(action func() error, effect func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := action(); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if effect() {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	log.Fatal("timed out retrying coupled action")
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("timed out waiting for replication")
}
