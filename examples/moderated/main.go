// Moderated: dynamic sub-groups managed by a facilitator — the "guided
// group meeting" of the paper's introduction. A moderator splits six
// participants into two working groups at runtime, moves one participant
// between groups mid-session, and finally dissolves both groups.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"cosoft"
)

func main() {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lis.Close()
	srv := cosoft.NewServer(cosoft.ServerOptions{})
	defer srv.Close()
	go srv.Serve(lis) //nolint:errcheck

	mk := func(user string) *cosoft.Client {
		reg := cosoft.NewRegistry()
		cosoft.MustBuild(reg, "/", `textarea pad text=""`)
		cli, err := cosoft.Dial(lis.Addr().String(), cosoft.ClientOptions{
			AppType: "pad", User: user, Host: "local", Registry: reg,
			RPCTimeout: 5 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.Declare("/pad"); err != nil {
			log.Fatal(err)
		}
		return cli
	}

	users := []string{"ana", "ben", "cho", "dee", "eli", "fay"}
	clients := make(map[string]*cosoft.Client, len(users))
	for _, u := range users {
		clients[u] = mk(u)
		defer clients[u].Close()
	}
	moderator := mk("moderator")
	defer moderator.Close()

	fac := cosoft.NewFacilitator(moderator)
	must(fac.Create("group-1"))
	must(fac.Create("group-2"))
	for _, u := range []string{"ana", "ben", "cho"} {
		must(fac.Add("group-1", clients[u].Ref("/pad")))
	}
	for _, u := range []string{"dee", "eli", "fay"} {
		must(fac.Add("group-2", clients[u].Ref("/pad")))
	}
	fmt.Printf("sessions: %v\n", fac.Sessions())

	typeAt := func(user, text string) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			err := clients[user].DispatchChecked(&cosoft.Event{
				Path: "/pad", Name: cosoft.EventEdit,
				Args: []cosoft.Value{cosoft.Int(0), cosoft.Int(0), cosoft.String(text)},
			})
			if err == nil {
				return
			}
			if time.Now().After(deadline) {
				log.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	padOf := func(user string) string {
		w, err := clients[user].Registry().Lookup("/pad")
		if err != nil {
			log.Fatal(err)
		}
		return w.Attr("text").AsString()
	}
	waitPad := func(user, want string) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if padOf(user) == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		log.Fatalf("%s pad = %q, want %q", user, padOf(user), want)
	}

	// Each group works independently.
	typeAt("ana", "G1: brainstorm\n")
	typeAt("dee", "G2: outline\n")
	waitPad("cho", "G1: brainstorm\n")
	waitPad("fay", "G2: outline\n")
	fmt.Printf("group-1 pads say %q; group-2 pads say %q\n", padOf("ben"), padOf("eli"))

	// The moderator moves cho into group 2 mid-session; cho's pad is first
	// aligned with the new group's state.
	must(fac.Remove("group-1", clients["cho"].Ref("/pad")))
	must(fac.AddWithSync("group-2", clients["cho"].Ref("/pad")))
	waitPad("cho", "G2: outline\n")
	fmt.Println("cho moved to group-2 and caught up with its state")

	typeAt("cho", "cho: joining in\n")
	waitPad("dee", "cho: joining in\nG2: outline\n")
	if padOf("ana") != "G1: brainstorm\n" {
		log.Fatalf("group-1 leaked: %q", padOf("ana"))
	}
	fmt.Println("cho's edits reach group-2 only; group-1 is unaffected")

	must(fac.Dissolve("group-1"))
	must(fac.Dissolve("group-2"))
	typeAt("dee", "solo again\n")
	time.Sleep(50 * time.Millisecond)
	if padOf("eli") == padOf("dee") {
		log.Fatal("dissolved group still synchronizes")
	}
	fmt.Println("groups dissolved; everyone keeps their pad and works alone")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
