package cosoft_test

import (
	"net"
	"testing"
	"time"

	"cosoft"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README's
// quickstart does: server over TCP, two clients, couple, type, replicate.
func TestPublicAPIEndToEnd(t *testing.T) {
	srv := cosoft.NewServer(cosoft.ServerOptions{})
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go srv.Serve(lis) //nolint:errcheck

	dial := func(user string) *cosoft.Client {
		reg := cosoft.NewRegistry()
		cosoft.MustBuild(reg, "/", `textfield note value=""`)
		cli, err := cosoft.Dial(lis.Addr().String(), cosoft.ClientOptions{
			AppType: "editor", User: user, Host: "local", Registry: reg,
			RPCTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cli.Close)
		if err := cli.Declare("/note"); err != nil {
			t.Fatal(err)
		}
		return cli
	}
	alice := dial("alice")
	bob := dial("bob")
	if err := alice.Couple("/note", bob.Ref("/note")); err != nil {
		t.Fatal(err)
	}
	if err := alice.Registry().Dispatch(&cosoft.Event{
		Path: "/note", Name: cosoft.EventChanged,
		Args: []cosoft.Value{cosoft.String("hello")},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		w, err := bob.Registry().Lookup("/note")
		if err != nil {
			t.Fatal(err)
		}
		if w.Attr("value").AsString() == "hello" {
			stats := srv.Stats()
			if stats.Events != 1 || stats.Links != 1 {
				t.Errorf("stats = %+v", stats)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("replication timed out")
}

func TestDialFailure(t *testing.T) {
	if _, err := cosoft.Dial("127.0.0.1:1", cosoft.ClientOptions{Registry: cosoft.NewRegistry()}); err == nil {
		t.Fatal("dial to closed port must fail")
	}
}
